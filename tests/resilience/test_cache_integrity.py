"""Cache integrity: checksummed entries, quarantine, atomic writes."""

import hashlib
import os

import pytest

from repro.analysis.result_cache import ENTRY_MAGIC, ResultCache
from repro.obs.metrics import MetricsRegistry
from repro.resilience import declare_harness_metrics
from repro.resilience.chaos import corrupt_cache_entries

KEY = "deadbeef" * 8


def _cache(tmp_path):
    registry = declare_harness_metrics(MetricsRegistry())
    return ResultCache(tmp_path / "cache", registry=registry), registry


class TestEntryFormat:
    def test_round_trip(self, tmp_path):
        cache, _ = _cache(tmp_path)
        payload = {"cycles": 123, "runs": [1, 2, 3]}
        cache.put_payload(KEY, payload)
        assert cache.get_payload(KEY) == payload
        assert cache.hits == 1 and cache.stores == 1

    def test_entries_carry_magic_and_checksum(self, tmp_path):
        cache, _ = _cache(tmp_path)
        cache.put_payload(KEY, {"x": 1})
        raw = (cache.cache_dir / f"{KEY}.pkl").read_bytes()
        assert raw.startswith(ENTRY_MAGIC)
        digest_size = hashlib.sha256().digest_size
        blob = raw[len(ENTRY_MAGIC) + digest_size:]
        assert raw[len(ENTRY_MAGIC):len(ENTRY_MAGIC) + digest_size] == \
            hashlib.sha256(blob).digest()


class TestQuarantine:
    @pytest.mark.parametrize("mode", ["truncate", "bitflip"])
    def test_corruption_detected_and_quarantined(self, tmp_path, mode):
        cache, registry = _cache(tmp_path)
        cache.put_payload(KEY, {"x": 1})
        victims = corrupt_cache_entries(cache.cache_dir, 1, mode=mode)
        assert victims == [f"{KEY}.pkl"]

        assert cache.get_payload(KEY) is None
        assert cache.misses == 1
        assert cache.corrupt == 1 and cache.quarantined == 1
        assert registry.value("cache_corrupt_entries") == 1
        assert registry.value("cache_quarantined") == 1
        # moved aside, never re-served, available for post-mortem
        assert not (cache.cache_dir / f"{KEY}.pkl").exists()
        assert (cache.quarantine_dir / f"{KEY}.pkl").exists()

    def test_recompute_after_quarantine(self, tmp_path):
        cache, _ = _cache(tmp_path)
        cache.put_payload(KEY, {"x": 1})
        corrupt_cache_entries(cache.cache_dir, 1, mode="truncate")
        assert cache.get_payload(KEY) is None
        cache.put_payload(KEY, {"x": 2})  # the recompute path
        assert cache.get_payload(KEY) == {"x": 2}

    def test_foreign_bytes_without_header_quarantined(self, tmp_path):
        cache, _ = _cache(tmp_path)
        cache.cache_dir.mkdir(parents=True)
        (cache.cache_dir / f"{KEY}.pkl").write_bytes(b"not a pickle")
        assert cache.get_payload(KEY) is None
        assert cache.corrupt == 1 and cache.misses == 1

    def test_checksummed_garbage_quarantined(self, tmp_path):
        # a valid header over unpicklable bytes: the writer stored junk
        cache, _ = _cache(tmp_path)
        cache.cache_dir.mkdir(parents=True)
        blob = b"\x80garbage that is not a pickle"
        raw = ENTRY_MAGIC + hashlib.sha256(blob).digest() + blob
        (cache.cache_dir / f"{KEY}.pkl").write_bytes(raw)
        assert cache.get_payload(KEY) is None
        assert cache.corrupt == 1


class TestAtomicWrites:
    def test_failed_replace_leaves_no_entry_and_no_temp(
            self, tmp_path, monkeypatch):
        cache, _ = _cache(tmp_path)
        cache.put_payload(KEY, {"x": 1})  # ensure dir exists

        def broken_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr("repro.analysis.result_cache.os.replace",
                            broken_replace)
        with pytest.raises(OSError):
            cache.put_payload("f" * 64, {"x": 2})
        monkeypatch.undo()
        assert not (cache.cache_dir / ("f" * 64 + ".pkl")).exists()
        assert list(cache.cache_dir.glob("*.tmp")) == []

    def test_keyboard_interrupt_reraised_not_swallowed(
            self, tmp_path, monkeypatch):
        cache, _ = _cache(tmp_path)
        cache.put_payload(KEY, {"x": 1})

        def interrupted_replace(src, dst):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.analysis.result_cache.os.replace",
                            interrupted_replace)
        with pytest.raises(KeyboardInterrupt):
            cache.put_payload("f" * 64, {"x": 2})
        monkeypatch.undo()
        assert list(cache.cache_dir.glob("*.tmp")) == []

    def test_writes_never_expose_partial_entries(self, tmp_path):
        cache, _ = _cache(tmp_path)
        cache.put_payload(KEY, {"x": 1})
        # the temp file is renamed into place; nothing else remains
        names = {path.name for path in cache.cache_dir.iterdir()}
        assert names == {f"{KEY}.pkl"}


class TestReadOnlyDegradation:
    def test_unwritable_quarantine_still_misses(self, tmp_path):
        if os.geteuid() == 0:
            pytest.skip("root ignores directory permissions")
        cache, registry = _cache(tmp_path)
        cache.put_payload(KEY, {"x": 1})
        corrupt_cache_entries(cache.cache_dir, 1, mode="truncate")
        cache.cache_dir.chmod(0o500)
        try:
            assert cache.get_payload(KEY) is None
            assert cache.corrupt == 1
            assert cache.quarantined == 0  # move failed, still a miss
        finally:
            cache.cache_dir.chmod(0o700)
