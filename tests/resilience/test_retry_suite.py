"""Satellite 3: a retried parallel suite is byte-identical to serial.

A worker that raises on its first call and succeeds on retry must leave
no trace in the results — ``run_suite(parallel=N)`` under chaos
converges to the exact payload bytes of a clean serial run.
"""

import pickle

from repro.analysis.runner import SuiteRunner, experiment_config
from repro.common.config import DMRConfig
from repro.obs.metrics import MetricsRegistry
from repro.resilience import RetryPolicy, Supervisor, declare_harness_metrics
from repro.resilience.chaos import ChaosPlan, ChaosWrapper

SCALE = 0.25


def _runner(**kwargs) -> SuiteRunner:
    kwargs.setdefault("scale", SCALE)
    return SuiteRunner(experiment_config(num_sms=2), **kwargs)


def test_retried_parallel_suite_byte_identical_to_serial(tmp_path):
    serial = _runner().run_suite(DMRConfig.paper_default())

    plan = ChaosPlan(tmp_path / "plan", raises=1)
    harness = declare_harness_metrics(MetricsRegistry())
    supervisor = Supervisor(
        policy=RetryPolicy(base_delay=0.01, max_delay=0.1),
        registry=harness,
        task_wrapper=lambda fn: ChaosWrapper(fn, tmp_path / "plan"),
    )
    chaotic_runner = _runner(supervisor=supervisor)
    chaotic = chaotic_runner.run_suite(DMRConfig.paper_default(),
                                       parallel=2)

    assert plan.fired() == 1, "the injected raise must have fired"
    assert harness.value("resilience_retries") >= 1
    assert harness.value("resilience_worker_failures") >= 1

    assert set(chaotic) == set(serial)
    for name in serial:
        assert pickle.dumps(chaotic[name].to_payload()) == \
            pickle.dumps(serial[name].to_payload()), name


def test_harness_snapshot_rides_the_runner(tmp_path):
    ChaosPlan(tmp_path / "plan", raises=1)
    harness = declare_harness_metrics(MetricsRegistry())
    supervisor = Supervisor(
        policy=RetryPolicy(base_delay=0.01, max_delay=0.1),
        registry=harness,
        task_wrapper=lambda fn: ChaosWrapper(fn, tmp_path / "plan"),
    )
    runner = _runner(supervisor=supervisor)
    runner.run_many([("scan",), ("radixsort",)], parallel=2)

    snapshot = runner.harness_snapshot()
    assert snapshot.value("resilience_retries") >= 1
    assert "retries=" in runner.cache_summary()
