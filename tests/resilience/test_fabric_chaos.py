"""Fabric chaos acceptance: the ISSUE-10 pinned scenario.

One chaos-ridden 2-process fleet — SIGKILLed worker, bit-flipped and
truncated store artifacts, clock-skewed leases, foreign writer debris —
must still produce a ``merged.json`` byte-identical to the serial
in-process oracle, adopt every already-published result rather than
recompute it (fleet-wide simulations == samples), and leave a store a
final audit-mode fsck calls clean.

The scenario is the same one ``python -m repro chaos --fabric`` and the
CI ``fabric-chaos-smoke`` job run, scaled down for test time.
"""

import pytest

from repro.resilience.chaos import run_fabric_chaos

SAMPLES = 24


@pytest.fixture(scope="module")
def report():
    return run_fabric_chaos(
        "scan", samples=SAMPLES, workers=2, kills=1, corrupt=2,
        corrupt_mode="bitflip", unit_size=6, scale=0.4, seed=0,
    )


class TestFabricChaosAcceptance:
    def test_merged_byte_identical_to_serial_oracle(self, report):
        assert report.matched, "chaotic fleet diverged from serial oracle"

    def test_zero_recomputation_of_adopted_results(self, report):
        # exactly-once fleet-wide: every sample simulated once despite
        # the kill, the corruption and the requeue races
        assert report.samples == SAMPLES
        assert report.simulations == SAMPLES

    def test_every_attack_landed(self, report):
        assert report.kills_fired == 1
        assert -9 in report.worker_exits  # one worker really SIGKILLed
        assert 0 in report.worker_exits  # and one survived to exit clean
        assert len(report.corrupted) >= 2
        assert len(report.foreign_dropped) >= 3
        assert report.skewed_claims >= 1

    def test_repair_found_and_healed_the_damage(self, report):
        kinds = report.repair_findings
        assert kinds.get("torn-result", 0) >= 1
        assert kinds.get("foreign-file", 0) >= 3
        assert report.quarantined > 0
        assert report.counters["store_quarantined"] > 0

    def test_final_audit_fsck_is_clean(self, report):
        assert report.fsck_clean

    def test_report_payload_round_trips(self, report):
        payload = report.to_payload()
        assert payload["matched"] is True
        assert payload["fsck_clean"] is True
        assert payload["simulations"] == SAMPLES
        assert "store_quarantined" in payload["counters"]
