"""Supervisor behavior under worker failure, pool collapse and timeouts.

Worker functions live at module level so they pickle into the pool by
reference; one-shot failures are driven through the chaos plan's
atomic claim protocol, which holds across retries and processes.
"""

import time

import pytest

from repro.common.errors import (
    FaultInjectionError,
    PermanentSimFailure,
    PoisonedTask,
    TaskTimeout,
)
from repro.obs.metrics import MetricsRegistry
from repro.resilience import (
    HARNESS_COUNTERS,
    RetryPolicy,
    Supervisor,
    classify_failure,
    declare_harness_metrics,
)
from repro.resilience.chaos import ChaosFailure, ChaosPlan, ChaosWrapper


def _square(value):
    return value * value


def _assert_positive(value):
    assert value > 0, "injected deterministic failure"
    return value


def _raise_repro_error(value):
    raise FaultInjectionError(f"deterministic simulator failure on {value}")


def _sleep_forever(value):
    time.sleep(60.0)
    return value


def _fast_policy(**overrides):
    defaults = dict(max_attempts=3, base_delay=0.01, max_delay=0.05)
    defaults.update(overrides)
    return RetryPolicy(**defaults)


def _registry():
    return declare_harness_metrics(MetricsRegistry())


class TestClassification:
    def test_repro_errors_are_permanent(self):
        assert classify_failure(FaultInjectionError("x")) == "permanent"
        assert classify_failure(AssertionError("x")) == "permanent"

    def test_everything_else_is_transient(self):
        assert classify_failure(ChaosFailure("x")) == "transient"
        assert classify_failure(OSError("x")) == "transient"
        assert classify_failure(TaskTimeout("x")) == "transient"


class TestHappyPath:
    def test_parallel_map_preserves_order(self):
        registry = _registry()
        supervisor = Supervisor(policy=_fast_policy(), registry=registry)
        values = list(range(24))
        assert supervisor.map(_square, values, workers=3) == [
            v * v for v in values]
        assert registry.value("resilience_tasks") == 24
        assert registry.value("resilience_retries") == 0

    def test_serial_map_matches_parallel(self):
        serial = Supervisor().map(_square, range(10), workers=1)
        parallel = Supervisor().map(_square, range(10), workers=4)
        assert serial == parallel

    def test_empty_map(self):
        assert Supervisor().map(_square, [], workers=4) == []

    def test_declared_counters_all_present(self):
        registry = _registry()
        for name in HARNESS_COUNTERS:
            assert registry.value(name) == 0
            assert name in registry.counters()


class TestRetries:
    def test_flaky_worker_retried_parallel(self, tmp_path):
        plan = ChaosPlan(tmp_path / "plan", raises=1)
        registry = _registry()
        supervisor = Supervisor(
            policy=_fast_policy(), registry=registry,
            task_wrapper=lambda fn: ChaosWrapper(fn, tmp_path / "plan"),
        )
        values = list(range(8))
        assert supervisor.map(_square, values, workers=2) == [
            v * v for v in values]
        assert plan.fired() == 1
        assert registry.value("resilience_retries") == 1
        assert registry.value("resilience_worker_failures") == 1

    def test_flaky_worker_retried_serial(self, tmp_path):
        plan = ChaosPlan(tmp_path / "plan", raises=1)
        registry = _registry()
        supervisor = Supervisor(
            policy=_fast_policy(), registry=registry,
            task_wrapper=lambda fn: ChaosWrapper(fn, tmp_path / "plan"),
        )
        assert supervisor.map(_square, [3, 4], workers=1) == [9, 16]
        assert plan.fired() == 1
        assert registry.value("resilience_retries") == 1

    def test_retries_exhausted_poisons_task(self, tmp_path):
        # more injected raises than the attempt budget for one task
        ChaosPlan(tmp_path / "plan", raises=10)
        registry = _registry()
        supervisor = Supervisor(
            policy=_fast_policy(max_attempts=2), registry=registry,
            task_wrapper=lambda fn: ChaosWrapper(fn, tmp_path / "plan"),
        )
        with pytest.raises(PoisonedTask) as excinfo:
            supervisor.map(_square, [1], workers=1)
        assert excinfo.value.attempts == 2
        assert isinstance(excinfo.value.__cause__, ChaosFailure)
        assert registry.value("resilience_poisoned_tasks") == 1

    def test_permanent_failure_fails_fast(self):
        registry = _registry()
        supervisor = Supervisor(policy=_fast_policy(), registry=registry)
        with pytest.raises(PermanentSimFailure):
            supervisor.map(_raise_repro_error, [1], workers=1)
        assert registry.value("resilience_retries") == 0
        assert registry.value("resilience_permanent_failures") == 1

    def test_assertion_failure_fails_fast_parallel(self):
        registry = _registry()
        supervisor = Supervisor(policy=_fast_policy(), registry=registry)
        with pytest.raises(PermanentSimFailure) as excinfo:
            supervisor.map(_assert_positive, [1, 2, -1, 4], workers=2)
        assert isinstance(excinfo.value.__cause__, AssertionError)
        assert registry.value("resilience_permanent_failures") == 1


class TestPoolRecovery:
    def test_sigkilled_worker_recovered(self, tmp_path):
        plan = ChaosPlan(tmp_path / "plan", kills=1)
        registry = _registry()
        supervisor = Supervisor(
            policy=_fast_policy(), registry=registry,
            task_wrapper=lambda fn: ChaosWrapper(fn, tmp_path / "plan"),
        )
        values = list(range(12))
        assert supervisor.map(_square, values, workers=2) == [
            v * v for v in values]
        assert plan.fired() == 1
        assert registry.value("resilience_pool_rebuilds") >= 1
        # someone was charged for the collapse, and recovered
        assert registry.value("resilience_worker_failures") >= 1
        assert registry.value("resilience_tasks") == 12


class TestDeadlines:
    def test_timeout_is_structured_and_bounded(self, tmp_path):
        registry = _registry()
        supervisor = Supervisor(
            policy=_fast_policy(max_attempts=1),
            deadline=0.4, registry=registry,
        )
        start = time.monotonic()
        with pytest.raises(PoisonedTask) as excinfo:
            supervisor.map(_sleep_forever, [1, 2], workers=2)
        elapsed = time.monotonic() - start
        cause = excinfo.value.__cause__
        assert isinstance(cause, TaskTimeout)
        assert cause.deadline == pytest.approx(0.4)
        assert cause.elapsed >= 0.4
        assert registry.value("resilience_timeouts") >= 1
        # bounded at ~deadline + pool teardown, nowhere near the 60s sleep
        assert elapsed < 15.0

    def test_timeout_retries_then_converges(self, tmp_path):
        # one oversleeping call, then clean retries: the map recovers
        plan = ChaosPlan(tmp_path / "plan", sleeps=1)
        registry = _registry()
        supervisor = Supervisor(
            policy=_fast_policy(), deadline=0.4, registry=registry,
            task_wrapper=lambda fn: ChaosWrapper(
                fn, tmp_path / "plan", sleep_seconds=60.0),
        )
        values = list(range(6))
        start = time.monotonic()
        assert supervisor.map(_square, values, workers=2) == [
            v * v for v in values]
        elapsed = time.monotonic() - start
        assert plan.fired() == 1
        assert registry.value("resilience_timeouts") == 1
        assert registry.value("resilience_pool_rebuilds") >= 1
        assert elapsed < 15.0

    def test_callable_deadline_spec(self):
        registry = _registry()
        supervisor = Supervisor(
            policy=_fast_policy(), registry=registry,
            deadline=lambda arg: 30.0 + arg,
        )
        values = list(range(6))
        assert supervisor.map(_square, values, workers=2) == [
            v * v for v in values]
        assert registry.value("resilience_timeouts") == 0
