"""Chaos acceptance: faulted campaigns converge byte-identically.

These drive :func:`run_campaign_chaos` end to end — the same scenario
``python -m repro chaos`` runs, scaled down for test time.
"""

from repro.resilience.chaos import (
    ChaosPlan,
    ChaosWrapper,
    chaos_initializer,
    claim_event,
    run_campaign_chaos,
)


class TestChaosPlan:
    def test_events_claimed_exactly_once(self, tmp_path):
        plan = ChaosPlan(tmp_path, kills=1, raises=2)
        assert plan.pending() == 3
        kinds = [claim_event(str(tmp_path)) for _ in range(5)]
        assert sorted(k for k in kinds if k) == ["kill", "raise", "raise"]
        assert plan.pending() == 0 and plan.fired() == 3

    def test_wrapper_passthrough_when_plan_empty(self, tmp_path):
        wrapper = ChaosWrapper(abs, tmp_path)
        assert wrapper(-3) == 3

    def test_initializer_claims_only_init_events(self, tmp_path):
        plan = ChaosPlan(tmp_path, raises=1)
        chaos_initializer(str(tmp_path))  # no init-raise pending: no-op
        assert plan.pending() == 1


class TestAcceptanceScenarios:
    def test_kill_plus_corrupt_campaign_converges(self):
        report = run_campaign_chaos(
            "scan", samples=40, parallel=2, kills=1, corrupt=1, seed=1)
        assert report.matched, "chaotic campaign diverged from serial"
        assert report.classifications == 40
        assert report.events_pending == 0
        assert report.events_fired == 1
        assert report.counters["resilience_pool_rebuilds"] >= 1
        assert report.counters["cache_corrupt_entries"] == 1
        assert report.counters["cache_quarantined"] == 1
        assert len(report.corrupted_entries) == 1

    def test_raise_plus_bitflip_campaign_converges(self):
        report = run_campaign_chaos(
            "scan", samples=25, parallel=2, kills=0, raises=1,
            corrupt=1, corrupt_mode="bitflip", seed=2)
        assert report.matched
        assert report.counters["resilience_retries"] >= 1
        assert report.counters["cache_corrupt_entries"] == 1

    def test_initializer_failure_survived(self):
        report = run_campaign_chaos(
            "scan", samples=20, parallel=2, kills=0, corrupt=0,
            init_raises=1, seed=3)
        assert report.matched
        assert report.events_pending == 0

    def test_report_payload_round_trips(self):
        report = run_campaign_chaos(
            "scan", samples=10, parallel=2, kills=0, raises=1,
            corrupt=0, seed=4)
        payload = report.to_payload()
        assert payload["matched"] is True
        assert payload["classifications"] == 10
        assert "resilience_retries" in payload["counters"]
        assert "counters" in payload["snapshot"]
