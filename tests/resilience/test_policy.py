"""Property tests for the retry policy and deadline calibration.

Satellite 6: the backoff schedule must be monotone non-decreasing,
bounded by the cap, and deterministic given the seed — and jitter must
come from an injected RNG, never global ``random`` state.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.resilience import (
    DEFAULT_MAX_FAULTY_CYCLES,
    RetryPolicy,
    cycle_budget,
    wall_budget,
)

policies = st.builds(
    RetryPolicy,
    max_attempts=st.integers(1, 8),
    base_delay=st.floats(0.0, 5.0, allow_nan=False),
    backoff_factor=st.floats(1.0, 4.0, allow_nan=False),
    max_delay=st.floats(0.0, 5.0, allow_nan=False),
    jitter=st.floats(0.0, 1.0, allow_nan=False),
    seed=st.integers(0, 2**32 - 1),
)


class TestBackoffSchedule:
    @given(policy=policies, key=st.integers(0, 10_000))
    @settings(max_examples=200)
    def test_monotone_nondecreasing(self, policy, key):
        schedule = policy.backoff_schedule(key, count=10)
        assert all(later >= earlier for earlier, later
                   in zip(schedule, schedule[1:]))

    @given(policy=policies, key=st.integers(0, 10_000))
    @settings(max_examples=200)
    def test_bounded_by_cap(self, policy, key):
        schedule = policy.backoff_schedule(key, count=10)
        assert all(0.0 <= delay <= policy.max_delay for delay in schedule)

    @given(policy=policies, key=st.integers(0, 10_000))
    def test_deterministic_given_seed_and_key(self, policy, key):
        twin = RetryPolicy(
            max_attempts=policy.max_attempts,
            base_delay=policy.base_delay,
            backoff_factor=policy.backoff_factor,
            max_delay=policy.max_delay,
            jitter=policy.jitter,
            seed=policy.seed,
        )
        assert policy.backoff_schedule(key, 10) == twin.backoff_schedule(
            key, 10)

    @given(policy=policies, key=st.integers(0, 10_000),
           count=st.integers(1, 10))
    def test_prefix_stable(self, policy, key, count):
        # delay(n) consults a truncated schedule; truncation must not
        # change the delays it shares with the full schedule
        full = policy.backoff_schedule(key, 10)
        assert policy.backoff_schedule(key, count) == full[:count]

    @given(policy=policies, key=st.integers(0, 10_000))
    def test_independent_of_global_random_state(self, policy, key):
        random.seed(12345)
        first = policy.backoff_schedule(key, 6)
        random.seed(99999)
        second = policy.backoff_schedule(key, 6)
        assert first == second

    def test_default_count_is_retry_budget(self):
        policy = RetryPolicy(max_attempts=4)
        assert len(policy.backoff_schedule()) == 3

    def test_none_policy_never_sleeps(self):
        policy = RetryPolicy.none()
        assert policy.max_attempts == 1
        assert policy.backoff_schedule() == []


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_delay": -0.1},
        {"max_delay": -1.0},
        {"backoff_factor": 0.5},
        {"jitter": 1.5},
        {"jitter": -0.1},
    ])
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ConfigError):
            RetryPolicy(**kwargs)

    def test_delay_is_one_based(self):
        with pytest.raises(ConfigError):
            RetryPolicy().delay(0)


class TestBudgets:
    @given(golden=st.integers(0, 10**6))
    def test_cycle_budget_bounded_and_positive(self, golden):
        budget = cycle_budget(golden)
        assert 1 <= budget <= DEFAULT_MAX_FAULTY_CYCLES

    @given(golden=st.floats(0.0, 100.0, allow_nan=False))
    def test_wall_budget_bounded_and_positive(self, golden):
        budget = wall_budget(golden)
        assert 0.0 < budget <= max(600.0, golden)

    @given(short=st.floats(0.0, 50.0, allow_nan=False),
           extra=st.floats(0.0, 50.0, allow_nan=False))
    def test_wall_budget_monotone_in_golden_runtime(self, short, extra):
        assert wall_budget(short + extra) >= wall_budget(short)
