"""Unit tests for fault models (bit flips and stuck-at forcing)."""

import math

import pytest

from repro.common.errors import FaultInjectionError
from repro.faults.models import (
    StuckAtFault,
    TransientFault,
    flip_bit,
    force_bit,
)
from repro.isa.opcodes import UnitType


class TestFlipBit:
    def test_int_flip(self):
        assert flip_bit(0, 0) == 1
        assert flip_bit(5, 1) == 7

    def test_int_flip_is_involution(self):
        for value in (0, 1, -1, 12345, -99999):
            for bit in (0, 7, 15, 31):
                assert flip_bit(flip_bit(value, bit), bit) == value

    def test_sign_bit_flip(self):
        assert flip_bit(0, 31) == -(1 << 31)

    def test_float_flip_roundtrips(self):
        for value in (0.0, 1.5, -2.25, 1e10):
            for bit in (0, 23, 30, 31):
                assert flip_bit(flip_bit(value, bit), bit) == value

    def test_float_exponent_flip_is_wild(self):
        flipped = flip_bit(1.0, 30)  # top exponent bit
        assert not math.isclose(flipped, 1.0, rel_tol=0.5)

    def test_bool_flip(self):
        assert flip_bit(True, 0) is False
        assert flip_bit(False, 0) is True
        assert flip_bit(True, 5) is True  # upper bits are zero anyway

    def test_out_of_range_bit_rejected(self):
        with pytest.raises(FaultInjectionError):
            flip_bit(1, 32)


class TestForceBit:
    def test_stuck_at_one(self):
        assert force_bit(0, 3, 1) == 8

    def test_stuck_at_zero(self):
        assert force_bit(0xF, 0, 0) == 0xE

    def test_idempotent(self):
        once = force_bit(12345, 7, 1)
        assert force_bit(once, 7, 1) == once

    def test_no_change_when_already_matching(self):
        assert force_bit(8, 3, 1) == 8

    def test_float_mantissa_forcing(self):
        forced = force_bit(1.5, 0, 1)
        assert forced != 1.5
        assert force_bit(forced, 0, 1) == forced

    def test_invalid_stuck_value(self):
        with pytest.raises(FaultInjectionError):
            force_bit(0, 0, 2)


class TestFaultSites:
    def test_site_matching(self):
        fault = StuckAtFault(sm_id=1, hw_lane=5, unit=UnitType.SP, bit=0)
        assert fault.matches_site(1, UnitType.SP, 5)
        assert not fault.matches_site(0, UnitType.SP, 5)
        assert not fault.matches_site(1, UnitType.LDST, 5)
        assert not fault.matches_site(1, UnitType.SP, 6)

    def test_unit_wildcard(self):
        fault = StuckAtFault(sm_id=1, hw_lane=5, unit=None)
        assert fault.matches_site(1, UnitType.SP, 5)
        assert fault.matches_site(1, UnitType.SFU, 5)

    def test_transient_arming(self):
        fault = TransientFault(sm_id=0, hw_lane=0, cycle=100)
        assert not fault.is_armed(99)
        assert fault.is_armed(100)
        assert fault.is_armed(500)

    def test_stuck_at_apply(self):
        fault = StuckAtFault(sm_id=0, hw_lane=0, bit=1, stuck_to=1)
        assert fault.apply(0, cycle=0) == 2

    def test_transient_apply_flips(self):
        fault = TransientFault(sm_id=0, hw_lane=0, bit=2)
        assert fault.apply(0, cycle=0) == 4
