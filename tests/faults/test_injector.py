"""Unit tests for the fault injector hook."""

from repro.faults.injector import FaultInjector
from repro.faults.models import StuckAtFault, TransientFault
from repro.isa.opcodes import UnitType


class TestStuckAt:
    def test_perturbs_every_matching_computation(self):
        injector = FaultInjector([
            StuckAtFault(sm_id=0, hw_lane=3, unit=UnitType.SP,
                         bit=0, stuck_to=1),
        ])
        assert injector.apply(0, UnitType.SP, 3, 0, 0) == 1
        assert injector.apply(0, UnitType.SP, 3, 99, 4) == 5
        assert injector.activations == 2

    def test_other_sites_untouched(self):
        injector = FaultInjector([
            StuckAtFault(sm_id=0, hw_lane=3, unit=UnitType.SP, bit=0,
                         stuck_to=1),
        ])
        assert injector.apply(0, UnitType.SP, 4, 0, 0) == 0
        assert injector.apply(1, UnitType.SP, 3, 0, 0) == 0
        assert injector.apply(0, UnitType.LDST, 3, 0, 0) == 0
        assert injector.activations == 0

    def test_masked_activation_not_counted(self):
        injector = FaultInjector([
            StuckAtFault(sm_id=0, hw_lane=0, bit=0, stuck_to=1),
        ])
        assert injector.apply(0, UnitType.SP, 0, 0, 1) == 1  # already 1
        assert injector.activations == 0


class TestTransient:
    def test_fires_exactly_once(self):
        injector = FaultInjector([
            TransientFault(sm_id=0, hw_lane=0, bit=0, cycle=10),
        ])
        assert injector.apply(0, UnitType.SP, 0, 5, 0) == 0   # not armed
        assert injector.apply(0, UnitType.SP, 0, 10, 0) == 1  # strike
        assert injector.apply(0, UnitType.SP, 0, 11, 0) == 0  # consumed
        assert injector.activations == 1

    def test_reset_rearms(self):
        injector = FaultInjector([
            TransientFault(sm_id=0, hw_lane=0, bit=0, cycle=0),
        ])
        injector.apply(0, UnitType.SP, 0, 0, 0)
        injector.reset()
        assert not injector.any_fired
        assert injector.apply(0, UnitType.SP, 0, 0, 0) == 1

    def test_multiple_faults_compose(self):
        injector = FaultInjector([
            StuckAtFault(sm_id=0, hw_lane=0, bit=0, stuck_to=1),
            StuckAtFault(sm_id=0, hw_lane=0, bit=1, stuck_to=1),
        ])
        assert injector.apply(0, UnitType.SP, 0, 0, 0) == 3
