"""Engine differential: faulty runs must be execution-engine invariant.

The campaign cache deliberately excludes the execution engine from its
keys — a classification computed under the scalar interpreter must be
interchangeable with one computed under the windowed vector path (run
vectorized until the fault can fire, scalar only inside the activation
window).  These tests are that contract's enforcement: identical fault
lists under ``engine="scalar"`` and ``engine="auto"`` must yield
byte-identical :class:`FaultRun` payloads — outcomes, detection counts,
activations and cycle counts — across DMR configurations.

A non-vacuity check pins down that the windowed path really *is*
vectorized outside the fault window; without it the differential would
pass trivially if faulty runs silently pinned scalar again.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.common.config import (DMRConfig, GPUConfig, LaunchConfig,
                                 MappingPolicy)
from repro.faults.campaign import CampaignEngine, CampaignSpec
from repro.faults.injector import FaultInjector
from repro.faults.models import StuckAtFault, TransientFault
from repro.faults.sampler import FaultSampler
from repro.isa.opcodes import UnitType
from repro.sim.gpu import GPU
from repro.sim.memory import GlobalMemory
from repro.sim.sm import SM

from tests.conftest import build_counting_kernel

DMR_CONFIGS = [
    DMRConfig.disabled(),
    DMRConfig.paper_default(),
    DMRConfig.paper_default().with_mapping(MappingPolicy.IN_ORDER),
]


def campaign_payloads(spec: CampaignSpec, faults) -> list:
    engine = CampaignEngine(spec)
    return [run.to_payload() for run in engine.run(faults).runs]


@pytest.mark.parametrize("dmr", DMR_CONFIGS,
                         ids=["disabled", "paper", "inorder"])
def test_sampled_transients_engine_invariant(dmr):
    """The tentpole oracle: same faults, scalar vs windowed vector."""
    spec = CampaignSpec(workload="scan", config=GPUConfig.small(1),
                        dmr=dmr, scale=0.25)
    horizon = CampaignEngine(spec).golden_result().cycles
    faults = FaultSampler(spec.config, windows=2).sample(
        12, horizon, seed=11)
    scalar = campaign_payloads(replace(spec, engine="scalar"), faults)
    auto = campaign_payloads(replace(spec, engine="auto"), faults)
    assert scalar == auto


def test_stuck_at_faults_engine_invariant():
    """Permanent faults keep every issue scalar, but must still agree."""
    spec = CampaignSpec(workload="matrixmul", config=GPUConfig.small(1),
                        dmr=DMRConfig.paper_default(), scale=0.25)
    faults = [
        StuckAtFault(sm_id=0, hw_lane=lane, unit=unit, bit=bit, stuck_to=1)
        for lane, unit, bit in [(0, UnitType.SP, 0), (5, UnitType.SP, 3),
                                (9, UnitType.LDST, 1), (13, UnitType.SFU, 7)]
    ]
    scalar = campaign_payloads(replace(spec, engine="scalar"), faults)
    auto = campaign_payloads(replace(spec, engine="auto"), faults)
    assert scalar == auto


def _run_faulty_sm(fault, iterations: int = 40) -> SM:
    """One SM running the counting kernel under *fault*, engine=auto."""
    config = GPUConfig.small(1)
    program = build_counting_kernel(iterations)
    sm = SM(sm_id=0, config=config, program=program,
            launch=LaunchConfig(1, 32), block_ids=[0],
            global_memory=GlobalMemory(),
            lane_of_slot=list(range(config.warp_size)),
            fault_hook=FaultInjector([fault]), engine="auto")
    sm.run()
    return sm


def test_windowed_path_vectorizes_outside_fault_window():
    """Non-vacuity: a mid-kernel transient leaves most issues vectorized.

    Before this machinery a fault hook pinned the whole run scalar; a
    regression back to that would make the differential tests vacuously
    green, so assert the engine split directly on the executor counters.
    """
    golden = _run_faulty_sm(
        TransientFault(sm_id=0, hw_lane=0, unit=UnitType.SP,
                       bit=4, cycle=10 ** 9))  # never fires
    assert golden.executor.vector_issues > 0
    assert golden.executor.scalar_issues == 0

    strike = golden.cycle // 2
    faulty = _run_faulty_sm(
        TransientFault(sm_id=0, hw_lane=3, unit=UnitType.SP,
                       bit=4, cycle=strike))
    assert faulty.executor.vector_issues > 0, "windowed path never engaged"
    assert faulty.executor.scalar_issues > 0, (
        "fault window never dropped to the scalar engine"
    )


def test_stuck_at_pins_scalar():
    """A permanent fault can fire on any issue: no vector issue is safe."""
    sm = _run_faulty_sm(
        StuckAtFault(sm_id=0, hw_lane=2, unit=UnitType.SP,
                     bit=3, stuck_to=1), iterations=6)
    assert sm.executor.vector_issues == 0
    assert sm.executor.scalar_issues > 0


class TestMayPerturb:
    def test_transient_arms_at_strike_cycle(self):
        fault = TransientFault(sm_id=0, hw_lane=1, unit=UnitType.SP,
                               bit=0, cycle=100)
        injector = FaultInjector([fault])
        assert not injector.may_perturb(0, 99)
        assert injector.may_perturb(0, 100)
        assert injector.may_perturb(0, 5000)  # armed until it fires

    def test_transient_disarms_after_firing(self):
        fault = TransientFault(sm_id=0, hw_lane=1, unit=UnitType.SP,
                               bit=0, cycle=100)
        injector = FaultInjector([fault])
        injector.apply(0, UnitType.SP, 1, 150, 0)  # one-shot flip fires
        assert injector.activations == 1
        assert not injector.may_perturb(0, 151)

    def test_other_sm_never_perturbed(self):
        fault = TransientFault(sm_id=2, hw_lane=1, unit=UnitType.SP,
                               bit=0, cycle=0)
        injector = FaultInjector([fault])
        assert not injector.may_perturb(0, 0)
        assert injector.may_perturb(2, 0)

    def test_stuck_at_always_armed(self):
        fault = StuckAtFault(sm_id=0, hw_lane=1, unit=UnitType.SP,
                             bit=0, stuck_to=1)
        injector = FaultInjector([fault])
        assert injector.may_perturb(0, 0)
        assert injector.may_perturb(0, 10 ** 9)
