"""Replay the checked-in fault corpus and demand exact agreement.

Each corpus entry is one ``(workload, scheme, fault)`` classification
that was reviewed when ``golden_outcomes.json`` was committed.  The
replay runs the same spec through :class:`CampaignEngine` (no cache —
the point is to re-simulate) and compares exactly: outcome, detection
count, activation count.  Silent shifts in verifier pairing, fault
arming, the SECDED codec, partial-protection gating, the windowed
engine split or outcome classification all fail here first.
"""

from __future__ import annotations

import collections

import pytest

from repro.faults.campaign import CampaignEngine, Outcome

from tests.faults import golden_corpus


@pytest.fixture(scope="module")
def corpus() -> dict:
    return golden_corpus.load()


@pytest.fixture(scope="module")
def replayed(corpus):
    """(workload, scheme) -> list of FaultRun, replayed in corpus order."""
    by_group = collections.defaultdict(list)
    for entry in corpus["entries"]:
        key = (entry["workload"], entry["scheme"])
        by_group[key].append(golden_corpus.entry_fault(entry))
    runs = {}
    for (workload, scheme), faults in by_group.items():
        pcs = tuple(corpus["partial_pcs"][workload])
        spec = golden_corpus.corpus_spec(workload, scheme, pcs)
        runs[(workload, scheme)] = CampaignEngine(spec).run(faults).runs
    return runs


def test_corpus_is_fresh(corpus):
    """The checked-in faults are the ones the generator would draw
    today — a drifted sampler would silently shrink replay coverage."""
    for workload in golden_corpus.WORKLOADS:
        engine = CampaignEngine(golden_corpus.corpus_spec(workload))
        expected_faults = golden_corpus.corpus_faults(engine)
        for scheme in golden_corpus.SCHEMES:
            got = [golden_corpus.entry_fault(e) for e in corpus["entries"]
                   if e["workload"] == workload and e["scheme"] == scheme]
            assert got == expected_faults, (workload, scheme)


def test_partial_selection_is_fresh(corpus, replayed):
    """The checked-in protected-PC sets are what today's selection
    policy derives from today's DMR runs."""
    assert corpus["partial_budget"] == golden_corpus.PARTIAL_BUDGET
    for workload in golden_corpus.WORKLOADS:
        pcs = golden_corpus.partial_selection(replayed[(workload, "dmr")])
        assert list(pcs) == corpus["partial_pcs"][workload], workload


def test_corpus_shape(corpus):
    entries = corpus["entries"]
    per_workload = (golden_corpus.TRANSIENTS_PER_WORKLOAD
                    + len(golden_corpus.STUCK_ATS))
    assert len(entries) == (len(golden_corpus.WORKLOADS)
                            * len(golden_corpus.SCHEMES) * per_workload)
    groups = collections.Counter(
        (e["workload"], e["scheme"]) for e in entries)
    assert set(groups) == {
        (w, s) for w in golden_corpus.WORKLOADS
        for s in golden_corpus.SCHEMES
    }
    assert set(groups.values()) == {per_workload}


def test_corpus_exercises_the_outcome_lattice(corpus):
    """A corpus that only ever hits one outcome pins nothing down."""
    for scheme in golden_corpus.SCHEMES:
        outcomes = {e["outcome"] for e in corpus["entries"]
                    if e["scheme"] == scheme}
        assert {"detected", "masked"} <= outcomes, scheme
        assert outcomes <= {o.value for o in Outcome}


def test_secded_detects_every_activated_transient(corpus):
    """The codec is exhaustive on single-bit storage strikes: any
    transient that lands is detected (corrected), never SDC/DUE."""
    checked = 0
    for entry in corpus["entries"]:
        if entry["scheme"] != "secded":
            continue
        if entry["fault"]["kind"] == "stuck_at":
            # datapath defects are outside the codec's reach
            assert entry["detections"] == 0, entry
            continue
        if entry["activations"] > 0:
            assert entry["outcome"] == "detected", entry
            assert entry["detections"] == entry["activations"], entry
            checked += 1
    assert checked > 0


def test_partial_coverage_never_exceeds_full_dmr(corpus):
    """Protecting a PC subset can only lose detections per fault."""
    full = {(e["workload"], repr(e["fault"])): e["detections"]
            for e in corpus["entries"] if e["scheme"] == "dmr"}
    exceeded = [
        e for e in corpus["entries"] if e["scheme"] == "partial"
        and e["detections"] > full[(e["workload"], repr(e["fault"]))]
    ]
    assert not exceeded, exceeded[:3]


def test_replay_matches_corpus_exactly(corpus, replayed):
    cursors = collections.defaultdict(int)
    mismatches = []
    for entry in corpus["entries"]:
        key = (entry["workload"], entry["scheme"])
        run = replayed[key][cursors[key]]
        cursors[key] += 1
        got = {"workload": entry["workload"],
               "scheme": entry["scheme"],
               "fault": entry["fault"],
               "outcome": run.outcome.value,
               "detections": run.detections,
               "activations": run.activations}
        want = {k: entry[k]
                for k in ("workload", "scheme", "fault", "outcome",
                          "detections", "activations")}
        if got != want:
            mismatches.append((want, got))
    assert not mismatches, (
        f"{len(mismatches)} corpus entries drifted; first: "
        f"expected {mismatches[0][0]} got {mismatches[0][1]}. If the "
        "semantic change is intentional, regenerate with "
        "python -m tests.faults.golden_corpus and review the diff."
    )
