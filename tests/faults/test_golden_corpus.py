"""Replay the checked-in fault corpus and demand exact agreement.

Each corpus entry is one ``(workload, fault)`` classification that was
reviewed when ``golden_outcomes.json`` was committed.  The replay runs
the same spec through :class:`CampaignEngine` (no cache — the point is
to re-simulate) and compares exactly: outcome, detection count,
activation count.  Silent shifts in verifier pairing, fault arming, the
windowed engine split or outcome classification all fail here first.
"""

from __future__ import annotations

import collections

import pytest

from repro.faults.campaign import CampaignEngine, Outcome

from tests.faults import golden_corpus


@pytest.fixture(scope="module")
def corpus() -> dict:
    return golden_corpus.load()


@pytest.fixture(scope="module")
def replayed(corpus):
    """workload -> list of FaultRun, replayed in corpus order."""
    by_workload = collections.defaultdict(list)
    for entry in corpus["entries"]:
        by_workload[entry["workload"]].append(golden_corpus.entry_fault(entry))
    runs = {}
    for workload, faults in by_workload.items():
        engine = CampaignEngine(golden_corpus.corpus_spec(workload))
        runs[workload] = engine.run(faults).runs
    return runs


def test_corpus_is_fresh(corpus):
    """The checked-in faults are the ones the generator would draw
    today — a drifted sampler would silently shrink replay coverage."""
    for workload in golden_corpus.WORKLOADS:
        engine = CampaignEngine(golden_corpus.corpus_spec(workload))
        expected = [golden_corpus.entry_fault(e) for e in corpus["entries"]
                    if e["workload"] == workload]
        assert golden_corpus.corpus_faults(engine) == expected


def test_corpus_shape(corpus):
    entries = corpus["entries"]
    assert len(entries) == len(golden_corpus.WORKLOADS) * (
        golden_corpus.TRANSIENTS_PER_WORKLOAD + len(golden_corpus.STUCK_ATS)
    )
    per_workload = collections.Counter(e["workload"] for e in entries)
    assert set(per_workload) == set(golden_corpus.WORKLOADS)


def test_corpus_exercises_the_outcome_lattice(corpus):
    """A corpus that only ever hits one outcome pins nothing down."""
    outcomes = {e["outcome"] for e in corpus["entries"]}
    assert {"detected", "masked"} <= outcomes
    assert outcomes <= {o.value for o in Outcome}


def test_replay_matches_corpus_exactly(corpus, replayed):
    cursors = collections.defaultdict(int)
    mismatches = []
    for entry in corpus["entries"]:
        workload = entry["workload"]
        run = replayed[workload][cursors[workload]]
        cursors[workload] += 1
        got = {"workload": workload,
               "fault": entry["fault"],
               "outcome": run.outcome.value,
               "detections": run.detections,
               "activations": run.activations}
        want = {key: entry[key]
                for key in ("workload", "fault", "outcome", "detections",
                            "activations")}
        if got != want:
            mismatches.append((want, got))
    assert not mismatches, (
        f"{len(mismatches)} corpus entries drifted; first: "
        f"expected {mismatches[0][0]} got {mismatches[0][1]}. If the "
        "semantic change is intentional, regenerate with "
        "python -m tests.faults.golden_corpus and review the diff."
    )
