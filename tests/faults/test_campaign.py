"""Campaign tests: measured detection, including the hidden-error case.

These are the tests that *demonstrate* the paper's central safety
claims on live fault injections:

* intra-warp DMR detects faults because the verifier is a different SP;
* inter-warp DMR with lane shuffling detects permanent faults that
  same-lane (core-affinity) replay provably hides;
* without any DMR, the same faults cause silent data corruption.
"""

import pytest

from repro.common.config import DMRConfig, GPUConfig, LaunchConfig
from repro.faults.campaign import FaultCampaign, Outcome
from repro.faults.injector import FaultInjector
from repro.faults.models import StuckAtFault, TransientFault
from repro.isa.opcodes import UnitType
from repro.sim.gpu import GPU
from repro.sim.memory import GlobalMemory
from repro.workloads import get_workload

from tests.conftest import build_counting_kernel


def launch_counting(dmr, fault, config=None, iterations=6):
    config = config or GPUConfig.small(1)
    program = build_counting_kernel(iterations)
    memory = GlobalMemory()
    injector = FaultInjector([fault]) if fault else None
    gpu = GPU(config, dmr=dmr, fault_hook=injector)
    result = gpu.launch(
        program, LaunchConfig(1, 32), memory=memory
    )
    return result, memory


GOLDEN = {g: 6 * g for g in range(32)}


def output_corrupt(memory):
    return any(memory.load(g) != GOLDEN[g] for g in range(32))


class TestStuckAtDetection:
    def test_no_dmr_means_silent_corruption(self):
        # bit 3: corrupts data but leaves the (boolean) loop predicate
        # intact, so the kernel terminates
        fault = StuckAtFault(sm_id=0, hw_lane=2, unit=UnitType.SP,
                             bit=3, stuck_to=1)
        result, memory = launch_counting(DMRConfig.disabled(), fault)
        assert output_corrupt(memory)
        assert len(result.detections) == 0  # the SDC Warped-DMR prevents

    def test_warped_dmr_detects_stuck_at(self):
        # bit 3: corrupts data but leaves the (boolean) loop predicate
        # intact, so the kernel terminates
        fault = StuckAtFault(sm_id=0, hw_lane=2, unit=UnitType.SP,
                             bit=3, stuck_to=1)
        result, memory = launch_counting(DMRConfig.paper_default(), fault)
        assert len(result.detections) > 0

    def test_lane_shuffling_prevents_hidden_errors(self):
        """The paper's hidden-error argument, demonstrated: a stuck-at
        fault on a fully-utilized warp is INVISIBLE to same-lane replay
        but caught once the replay is shuffled to a neighboring lane."""
        # bit 3: corrupts data but leaves the (boolean) loop predicate
        # intact, so the kernel terminates
        fault = StuckAtFault(sm_id=0, hw_lane=2, unit=UnitType.SP,
                             bit=3, stuck_to=1)
        no_shuffle, memory_a = launch_counting(
            DMRConfig(lane_shuffle=False), fault
        )
        shuffle, memory_b = launch_counting(
            DMRConfig(lane_shuffle=True), fault
        )
        # the full-warp (inter-warp DMR) replays dominate this kernel;
        # same-lane replay recomputes the same wrong value
        inter_detections_off = [
            d for d in no_shuffle.detections if d.mode == "inter"
        ]
        inter_detections_on = [
            d for d in shuffle.detections if d.mode == "inter"
        ]
        assert len(inter_detections_off) == 0   # hidden!
        assert len(inter_detections_on) > 0     # caught
        assert output_corrupt(memory_a)


class TestTransientDetection:
    def test_transient_detected_by_inter_warp(self):
        fault = TransientFault(sm_id=0, hw_lane=4, unit=UnitType.SP,
                               bit=3, cycle=40)
        result, _ = launch_counting(DMRConfig.paper_default(), fault)
        assert len(result.detections) >= 1

    def test_transient_before_kernel_may_hit_first_op(self):
        fault = TransientFault(sm_id=0, hw_lane=0, unit=UnitType.SP,
                               bit=0, cycle=0)
        result, _ = launch_counting(DMRConfig.paper_default(), fault)
        assert len(result.detections) >= 1


class TestCampaignHarness:
    @pytest.fixture
    def campaign(self):
        workload = get_workload("scan")
        config = GPUConfig.small(1)
        return FaultCampaign(
            config=config,
            dmr=DMRConfig.paper_default(),
            make_run=lambda: workload.prepare(scale=0.25),
            output_of=lambda memory: workload.prepare(
                scale=0.25
            ).output_of(memory),
        )

    def test_golden_run_reproducible(self, campaign):
        assert campaign.golden_output() == campaign.golden_output()

    def test_campaign_classifies_all_runs(self, campaign):
        faults = [
            StuckAtFault(sm_id=0, hw_lane=lane, unit=UnitType.SP,
                         bit=0, stuck_to=1)
            for lane in (0, 5, 9)
        ]
        result = campaign.run(faults)
        assert result.total == 3
        assert sum(result.summary().values()) == 3

    def test_detection_rate_high_for_active_stuck_at(self, campaign):
        faults = [
            StuckAtFault(sm_id=0, hw_lane=lane, unit=UnitType.SP,
                         bit=1, stuck_to=1)
            for lane in range(8)
        ]
        result = campaign.run(faults)
        assert result.detection_rate >= 0.8
