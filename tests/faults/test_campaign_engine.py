"""CampaignEngine tests: caching, resumption, fan-out, CI bracketing.

The scaled-campaign acceptance criteria, asserted:

* a warm-cache rerun (or an interrupted campaign resumed) performs
  **zero** new simulations and returns byte-identical payloads;
* parallel fan-out classifies identically to the serial loop;
* the sampled coverage interval brackets the exhaustively measured
  coverage on a small kernel.
"""

from __future__ import annotations

import random

import pytest

from repro.common.config import DMRConfig, GPUConfig
from repro.faults.campaign import (CampaignEngine, CampaignSpec,
                                   FaultCampaign, Outcome, fault_run_key)
from repro.faults.models import TransientFault
from repro.faults.sampler import FaultSampler
from repro.isa.opcodes import UnitType
from repro.workloads import get_workload

from tests.conftest import build_counting_kernel


@pytest.fixture
def spec() -> CampaignSpec:
    return CampaignSpec(workload="scan", config=GPUConfig.small(1),
                        dmr=DMRConfig.paper_default(), scale=0.25)


def sampled_faults(spec: CampaignSpec, n: int, seed: int = 3) -> list:
    horizon = CampaignEngine(spec).golden_result().cycles
    return FaultSampler(spec.config, windows=2).sample(n, horizon, seed=seed)


class TestResumableCache:
    def test_warm_rerun_performs_zero_simulations(self, spec, tmp_path):
        faults = sampled_faults(spec, 8)
        cold = CampaignEngine(spec, cache=tmp_path)
        cold_result = cold.run(faults)
        assert cold.simulations == len(faults)

        warm = CampaignEngine(spec, cache=tmp_path)  # fresh process stand-in
        warm_result = warm.run(faults)
        assert warm.simulations == 0
        assert ([r.to_payload() for r in warm_result.runs]
                == [r.to_payload() for r in cold_result.runs])

    def test_interrupted_campaign_resumes_incrementally(self, spec, tmp_path):
        faults = sampled_faults(spec, 8)
        first = CampaignEngine(spec, cache=tmp_path)
        first.run(faults[:5])  # "interrupted" after 5 classifications

        resumed = CampaignEngine(spec, cache=tmp_path)
        result = resumed.run(faults)
        assert resumed.simulations == len(faults) - 5
        assert result.total == len(faults)

    def test_golden_run_computed_once_ever(self, spec, tmp_path):
        first = CampaignEngine(spec, cache=tmp_path)
        golden = first.golden_result()

        second = CampaignEngine(spec, cache=tmp_path)
        assert second.persistent_cache.hits == 0
        again = second.golden_result()
        assert second.persistent_cache.hits == 1
        assert again.to_payload() == golden.to_payload()

    def test_duplicate_faults_simulate_once(self, spec):
        fault = sampled_faults(spec, 1)[0]
        engine = CampaignEngine(spec)
        result = engine.run([fault, fault, fault])
        assert engine.simulations == 1
        assert result.total == 3
        assert len({r.outcome for r in result.runs}) == 1

    def test_key_covers_fault_and_spec(self, spec):
        fault = sampled_faults(spec, 1)[0]
        other_fault = TransientFault(sm_id=fault.sm_id,
                                     hw_lane=fault.hw_lane,
                                     unit=fault.unit, bit=fault.bit,
                                     cycle=fault.cycle + 1)
        assert fault_run_key(spec, fault) != fault_run_key(spec, other_fault)
        from dataclasses import replace
        assert (fault_run_key(replace(spec, seed=1), fault)
                != fault_run_key(spec, fault))
        # engine is excluded by the bit-identity contract
        assert (fault_run_key(replace(spec, engine="scalar"), fault)
                == fault_run_key(replace(spec, engine="auto"), fault))


class TestParallelFanOut:
    def test_parallel_matches_serial(self, spec):
        faults = sampled_faults(spec, 10)
        serial = CampaignEngine(spec).run(faults)
        parallel = CampaignEngine(spec, jobs=2).run(faults)
        assert ([r.to_payload() for r in parallel.runs]
                == [r.to_payload() for r in serial.runs])

    def test_parallel_workers_populate_shared_cache(self, spec, tmp_path):
        faults = sampled_faults(spec, 6)
        cold = CampaignEngine(spec, cache=tmp_path, jobs=2)
        cold.run(faults)
        assert cold.simulations == len(faults)

        warm = CampaignEngine(spec, cache=tmp_path)
        warm.run(faults)
        assert warm.simulations == 0


class TestSampledCoverageBracketsExhaustive:
    """The statistical-validity acceptance criterion.

    Enumerate a small transient-fault universe on the counting kernel,
    measure its coverage exhaustively, then estimate it from a uniform
    sample: the sample's 95% interval must bracket the exhaustive rate.
    """

    #: a 20-thread block leaves the last SIMT cluster partially idle, so
    #: intra-warp DMR engages with real gaps and the exhaustive coverage
    #: lands strictly inside (0, 1) — bracketing an interior rate is a
    #: much stronger check than bracketing a saturated 0% or 100%
    THREADS = 20

    @pytest.fixture(scope="class")
    def campaign(self):
        program = build_counting_kernel(6)
        threads = self.THREADS

        class Run:
            def __init__(self):
                from repro.common.config import LaunchConfig
                from repro.sim.memory import GlobalMemory
                self.program = program
                self.launch = LaunchConfig(1, threads)
                self.memory = GlobalMemory()

        return FaultCampaign(
            config=GPUConfig.small(1),
            dmr=DMRConfig.paper_default(),
            make_run=Run,
            output_of=lambda memory: [memory.load(g)
                                      for g in range(threads)],
        )

    @pytest.fixture(scope="class")
    def universe(self, campaign):
        horizon = campaign.golden_result().cycles
        cycles = [horizon // 5 * step for step in range(1, 5)]
        return [
            TransientFault(sm_id=0, hw_lane=lane, unit=UnitType.SP,
                           bit=bit, cycle=cycle)
            for lane in range(0, self.THREADS, 2)
            for bit in (0, 7, 31)
            for cycle in cycles
        ]

    @pytest.fixture(scope="class")
    def exhaustive(self, campaign, universe):
        return {id(f): campaign.run_fault(f) for f in universe}

    def test_interval_brackets_exhaustive_rate(self, campaign, universe,
                                               exhaustive):
        from repro.faults.campaign import CampaignResult

        full = CampaignResult(runs=list(exhaustive.values()))
        assert full.harmful_runs > 0, "universe too tame to measure"
        true_rate = full.detection_rate
        assert 0.0 < true_rate < 1.0, "universe rate degenerated"

        rng = random.Random(5)
        sample = CampaignResult(
            runs=[exhaustive[id(f)] for f in rng.sample(universe, 36)]
        )
        low, high = sample.coverage_interval(0.95)
        assert low <= true_rate <= high

    def test_exhaustive_interval_tightens_around_rate(self, exhaustive):
        from repro.faults.campaign import CampaignResult

        full = CampaignResult(runs=list(exhaustive.values()))
        low, high = full.coverage_interval(0.95)
        assert low <= full.detection_rate <= high

    def test_outcomes_partition_the_universe(self, exhaustive):
        from repro.faults.campaign import CampaignResult

        full = CampaignResult(runs=list(exhaustive.values()))
        assert sum(full.summary().values()) == full.total
        assert full.detected_runs == (full.count(Outcome.DETECTED)
                                      + full.count(Outcome.DETECTED_AND_CORRUPT))


class TestCampaignResultAccounting:
    def test_workload_campaign_end_to_end(self, spec):
        engine = CampaignEngine(spec)
        result = engine.run(sampled_faults(spec, 12))
        assert result.total == 12
        assert 0.0 <= result.detection_rate <= 1.0
        low, high = result.coverage_interval()
        assert 0.0 <= low <= high <= 1.0
        assert result.harmful_runs <= result.total

    def test_cache_summary_format(self, spec, tmp_path):
        engine = CampaignEngine(spec, cache=tmp_path)
        engine.run(sampled_faults(spec, 2))
        summary = engine.cache_summary()
        assert "simulations=2" in summary
        assert "disk-stores=" in summary

    def test_golden_output_matches_workload_check(self, spec):
        engine = CampaignEngine(spec)
        run = spec.prepare()
        run.memory = engine.golden_result().memory
        run.check(run.memory)  # golden run must be a correct execution
