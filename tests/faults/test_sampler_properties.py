"""Property tests: stratified sampling and binomial interval statistics.

The sampled-campaign methodology rests on a few exact invariants —
allocation counts summing to N, intervals staying inside [0, 1] and
shrinking as samples accumulate, outcomes obeying the classification
lattice.  Hypothesis searches the parameter space for violations.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.common.config import DMRConfig, GPUConfig, LaunchConfig
from repro.common.stats import (binomial_interval, clopper_pearson_interval,
                                wilson_interval)
from repro.faults.campaign import FaultCampaign, Outcome
from repro.faults.models import StuckAtFault, TransientFault
from repro.faults.sampler import FaultSampler, allocate
from repro.isa.opcodes import UnitType
from repro.sim.memory import GlobalMemory

from tests.conftest import build_counting_kernel


class TestAllocation:
    @given(n=st.integers(0, 2000), cells=st.integers(1, 96))
    def test_counts_sum_to_n(self, n, cells):
        counts = allocate(n, cells)
        assert sum(counts) == n
        assert len(counts) == cells

    @given(n=st.integers(0, 2000), cells=st.integers(1, 96))
    def test_allocation_is_balanced(self, n, cells):
        counts = allocate(n, cells)
        assert max(counts) - min(counts) <= 1
        assert all(count >= 0 for count in counts)


class TestSampler:
    @given(n=st.integers(0, 120), horizon=st.integers(1, 5000),
           seed=st.integers(0, 10))
    @settings(max_examples=40, deadline=None)
    def test_sample_size_and_bounds(self, n, horizon, seed):
        sampler = FaultSampler(GPUConfig.small(1), windows=4)
        faults = sampler.sample(n, horizon, seed=seed)
        assert len(faults) == n
        for fault in faults:
            assert isinstance(fault, TransientFault)
            assert 0 <= fault.hw_lane < sampler.config.warp_size
            assert 0 <= fault.cycle < horizon
            assert 0 <= fault.bit < 32
            assert fault.unit in sampler.units

    @given(n=st.integers(0, 80), horizon=st.integers(1, 5000),
           seed=st.integers(0, 10))
    @settings(max_examples=25, deadline=None)
    def test_sample_is_deterministic(self, n, horizon, seed):
        sampler = FaultSampler(GPUConfig.small(1), windows=3)
        assert (sampler.sample(n, horizon, seed=seed)
                == sampler.sample(n, horizon, seed=seed))

    @given(n=st.integers(0, 120), seed=st.integers(0, 10))
    @settings(max_examples=40, deadline=None)
    def test_stuck_at_sample_size_and_bounds(self, n, seed):
        sampler = FaultSampler(GPUConfig.small(1), windows=4)
        faults = sampler.sample_stuck_ats(n, seed=seed)
        assert len(faults) == n
        for fault in faults:
            assert isinstance(fault, StuckAtFault)
            assert 0 <= fault.hw_lane < sampler.config.warp_size
            assert 0 <= fault.bit < 32
            assert fault.stuck_to in (0, 1)
            assert fault.unit in sampler.units

    @given(n=st.integers(0, 80), seed=st.integers(0, 10))
    @settings(max_examples=25, deadline=None)
    def test_stuck_at_sample_is_deterministic(self, n, seed):
        sampler = FaultSampler(GPUConfig.small(1), windows=3)
        assert (sampler.sample_stuck_ats(n, seed=seed)
                == sampler.sample_stuck_ats(n, seed=seed))

    @given(n=st.integers(96, 200))
    @settings(max_examples=10, deadline=None)
    def test_stuck_at_strata_all_represented(self, n):
        """With >= one sample per (unit, lane) cell, every cell draws."""
        sampler = FaultSampler(GPUConfig.small(1))
        cells = {(f.unit, f.hw_lane)
                 for f in sampler.sample_stuck_ats(n, seed=0)}
        assert len(cells) == len(sampler.units) * len(sampler.lanes)

    @given(horizon=st.integers(1, 5000))
    @settings(max_examples=25, deadline=None)
    def test_strata_tile_the_horizon(self, horizon):
        sampler = FaultSampler(GPUConfig.small(1), windows=4)
        windows = sampler.cycle_windows(horizon)
        assert windows[0][0] == 0
        assert windows[-1][1] == horizon
        for (_, end), (start, _) in zip(windows, windows[1:]):
            assert end == start  # contiguous, non-overlapping


proportions = st.integers(0, 400).flatmap(
    lambda n: st.tuples(st.integers(0, n), st.just(n))
)


class TestIntervals:
    @given(kn=proportions,
           confidence=st.sampled_from([0.8, 0.9, 0.95, 0.99]),
           method=st.sampled_from(["wilson", "clopper-pearson"]))
    def test_interval_contains_point_estimate(self, kn, confidence, method):
        k, n = kn
        low, high = binomial_interval(k, n, confidence, method)
        assert 0.0 <= low <= high <= 1.0
        if n:
            assert low <= k / n <= high

    @given(kn=proportions)
    def test_interval_shrinks_as_samples_double(self, kn):
        """At a fixed observed rate, 2x the evidence must tighten (or at
        worst preserve) the interval — the 'CIs shrink with N' claim."""
        k, n = kn
        if n == 0:
            return
        for fn in (wilson_interval, clopper_pearson_interval):
            low1, high1 = fn(k, n)
            low2, high2 = fn(2 * k, 2 * n)
            assert (high2 - low2) <= (high1 - low1) + 1e-12

    @given(kn=proportions)
    def test_higher_confidence_widens(self, kn):
        k, n = kn
        low90, high90 = wilson_interval(k, n, 0.90)
        low99, high99 = wilson_interval(k, n, 0.99)
        assert (high99 - low99) >= (high90 - low90) - 1e-12

    @given(kn=proportions)
    def test_clopper_pearson_contains_wilson_center(self, kn):
        """The exact interval is conservative: it can't be narrower than
        Wilson on both sides at once."""
        k, n = kn
        if n == 0:
            return
        w_low, w_high = wilson_interval(k, n)
        cp_low, cp_high = clopper_pearson_interval(k, n)
        assert cp_low <= w_low + 1e-9 or cp_high >= w_high - 1e-9

    @given(n=st.integers(1, 400))
    def test_certain_outcomes_pin_the_endpoints(self, n):
        assert wilson_interval(n, n)[1] == 1.0
        assert wilson_interval(0, n)[0] == 0.0
        assert clopper_pearson_interval(n, n)[1] == 1.0
        assert clopper_pearson_interval(0, n)[0] == 0.0


def _make_campaign(threads: int = 32) -> FaultCampaign:
    program = build_counting_kernel(5)

    class Run:
        def __init__(self):
            self.program = program
            self.launch = LaunchConfig(1, threads)
            self.memory = GlobalMemory()

    return FaultCampaign(
        config=GPUConfig.small(1),
        dmr=DMRConfig.paper_default(),
        make_run=Run,
        output_of=lambda memory: [memory.load(g) for g in range(threads)],
    )


_CAMPAIGN = _make_campaign()
_GOLDEN = _CAMPAIGN.golden_output()
_HORIZON = _CAMPAIGN.golden_result().cycles


fault_strategy = st.one_of(
    st.builds(TransientFault,
              sm_id=st.just(0),
              hw_lane=st.integers(0, 31),
              unit=st.sampled_from(list(UnitType)),
              bit=st.integers(0, 31),
              cycle=st.integers(0, _HORIZON + 50)),
    st.builds(StuckAtFault,
              sm_id=st.just(0),
              hw_lane=st.integers(0, 31),
              unit=st.sampled_from(list(UnitType)),
              bit=st.integers(0, 7),
              stuck_to=st.sampled_from([0, 1])),
)


class TestOutcomeInvariants:
    """The classification lattice, checked against live simulations."""

    @given(fault=fault_strategy)
    @settings(max_examples=30, deadline=None)
    def test_outcome_lattice_invariants(self, fault):
        run = _CAMPAIGN.run_fault(fault, golden=_GOLDEN)
        if run.outcome in (Outcome.DETECTED, Outcome.DETECTED_AND_CORRUPT):
            assert run.detections >= 1
        else:
            assert run.detections == 0
        if run.outcome is not Outcome.HUNG:
            # replaying the fault must corrupt iff the outcome says so
            fresh = _CAMPAIGN.make_run()
            from repro.faults.injector import FaultInjector
            from repro.sim.gpu import GPU
            gpu = GPU(_CAMPAIGN.config, dmr=_CAMPAIGN.dmr,
                      fault_hook=FaultInjector([fault]),
                      max_cycles=_CAMPAIGN.cycle_budget())
            gpu.launch(fresh.program, fresh.launch, memory=fresh.memory)
            output = _CAMPAIGN.output_of(fresh.memory)
            corrupt = output != _GOLDEN
            expect_corrupt = run.outcome in (Outcome.SDC,
                                             Outcome.DETECTED_AND_CORRUPT)
            assert corrupt == expect_corrupt
            if run.outcome is Outcome.MASKED:
                assert output == _GOLDEN

    @given(fault=fault_strategy)
    @settings(max_examples=15, deadline=None)
    def test_inactive_fault_is_masked(self, fault):
        run = _CAMPAIGN.run_fault(fault, golden=_GOLDEN)
        if run.activations == 0 and run.outcome is not Outcome.HUNG:
            assert run.outcome is Outcome.MASKED
