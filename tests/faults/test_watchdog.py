"""Cycle-budget watchdog: HUNG is a measured outcome, not a hang.

A fault can corrupt control flow into a livelock — here, a stuck-at-1
on bit 0 of an SP output forces the counting kernel's loop predicate
permanently true, so the exit branch never falls through.  Without a
watchdog the campaign would never return; with it, the run exceeds its
budget (``factor x golden_cycles + slack``), the simulator raises, and
the campaign books ``HUNG``.
"""

from __future__ import annotations

import pytest

from repro.common.config import DMRConfig, GPUConfig, LaunchConfig
from repro.common.errors import SimulationError
from repro.faults.campaign import (DEFAULT_MAX_FAULTY_CYCLES,
                                   DEFAULT_WATCHDOG_FACTOR,
                                   DEFAULT_WATCHDOG_SLACK, CampaignEngine,
                                   CampaignSpec, FaultCampaign, Outcome,
                                   cycle_budget)
from repro.faults.injector import FaultInjector
from repro.faults.models import StuckAtFault
from repro.isa.opcodes import UnitType
from repro.sim.gpu import GPU
from repro.sim.memory import GlobalMemory

from tests.conftest import build_counting_kernel

#: forces the SETP loop predicate permanently true on every lane it hits
LIVELOCK_FAULT = StuckAtFault(sm_id=0, hw_lane=0, unit=UnitType.SP,
                              bit=0, stuck_to=1)


def launch_livelocked(max_cycles: int):
    gpu = GPU(GPUConfig.small(1), dmr=DMRConfig.paper_default(),
              fault_hook=FaultInjector([LIVELOCK_FAULT]),
              max_cycles=max_cycles)
    return gpu.launch(build_counting_kernel(6), LaunchConfig(1, 32),
                      memory=GlobalMemory())


class TestLivelockIsReal:
    def test_fault_hangs_without_watchdog(self):
        """The fault is a true livelock: raising the budget 20x past any
        plausible slow-run envelope still never terminates."""
        with pytest.raises(SimulationError):
            launch_livelocked(5_000)
        with pytest.raises(SimulationError):
            launch_livelocked(100_000)  # not slow — non-terminating

    def test_fault_free_run_fits_any_sane_budget(self):
        gpu = GPU(GPUConfig.small(1), dmr=DMRConfig.paper_default())
        result = gpu.launch(build_counting_kernel(6), LaunchConfig(1, 32),
                            memory=GlobalMemory())
        assert result.cycles < 5_000


class TestCampaignWatchdog:
    def _campaign(self) -> FaultCampaign:
        program = build_counting_kernel(6)

        class Run:
            def __init__(self):
                self.program = program
                self.launch = LaunchConfig(1, 32)
                self.memory = GlobalMemory()

        return FaultCampaign(
            config=GPUConfig.small(1),
            dmr=DMRConfig.paper_default(),
            make_run=Run,
            output_of=lambda memory: [memory.load(g) for g in range(32)],
        )

    def test_campaign_classifies_livelock_as_hung(self):
        campaign = self._campaign()
        run = campaign.run_fault(LIVELOCK_FAULT)
        assert run.outcome is Outcome.HUNG
        assert run.detections == 0

    def test_budget_scales_with_golden_runtime(self):
        campaign = self._campaign()
        golden = campaign.golden_result().cycles
        assert campaign.cycle_budget() == (
            DEFAULT_WATCHDOG_FACTOR * golden + DEFAULT_WATCHDOG_SLACK
        )
        assert campaign.cycle_budget() < DEFAULT_MAX_FAULTY_CYCLES

    def test_engine_campaign_books_hung(self):
        spec = CampaignSpec(workload="scan", config=GPUConfig.small(1),
                            dmr=DMRConfig.paper_default(), scale=0.25)
        engine = CampaignEngine(spec)
        run = engine.run_fault(LIVELOCK_FAULT)
        assert run.outcome is Outcome.HUNG

    def test_hung_runs_excluded_from_coverage(self):
        campaign = self._campaign()
        result = campaign.run([LIVELOCK_FAULT])
        assert result.count(Outcome.HUNG) == 1
        assert result.harmful_runs == 0
        assert result.coverage_interval() == (0.0, 1.0)  # no evidence


class TestBudgetFormula:
    def test_budget_is_affine_in_golden_cycles(self):
        assert cycle_budget(100, factor=8, slack=5000) == 5_800
        assert cycle_budget(0, factor=8, slack=5000) == 5_000

    def test_budget_respects_cap(self):
        assert cycle_budget(10 ** 9) == DEFAULT_MAX_FAULTY_CYCLES
        assert cycle_budget(100, factor=2, slack=0, cap=150) == 150

    def test_budget_never_below_one_cycle(self):
        assert cycle_budget(0, factor=1, slack=0) == 1
