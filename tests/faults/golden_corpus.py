"""Golden fault-outcome corpus: generation and shared plumbing.

``golden_outcomes.json`` pins the exact classification of ~50 seeded
faults across three workloads.  The replay test
(:mod:`tests.faults.test_golden_corpus`) re-simulates every entry and
compares outcome, detection count and activation count — any drift in
the simulator, the DMR verifiers, the fault models or the watchdog
shows up as a diff against numbers that were reviewed when checked in.

Regenerate (after an *intentional* semantic change) with::

    PYTHONPATH=src python -m tests.faults.golden_corpus

and review the JSON diff like source.
"""

from __future__ import annotations

import json
import pathlib

from repro.common.config import DMRConfig, GPUConfig
from repro.faults.campaign import CampaignEngine, CampaignSpec
from repro.faults.models import StuckAtFault, fault_from_payload, \
    fault_to_payload
from repro.faults.sampler import FaultSampler
from repro.isa.opcodes import UnitType

CORPUS_PATH = pathlib.Path(__file__).with_name("golden_outcomes.json")

#: corpus shape: 14 stratified transients + 3 stuck-ats per workload
WORKLOADS = ("scan", "matrixmul", "laplace")
TRANSIENTS_PER_WORKLOAD = 14
CORPUS_SEED = 2012  # the paper's year; arbitrary but fixed

STUCK_ATS = (
    StuckAtFault(sm_id=0, hw_lane=2, unit=UnitType.SP, bit=3, stuck_to=1),
    StuckAtFault(sm_id=0, hw_lane=7, unit=UnitType.LDST, bit=1, stuck_to=0),
    StuckAtFault(sm_id=0, hw_lane=13, unit=UnitType.SFU, bit=5, stuck_to=1),
    # bit 0 stuck-to-1 corrupts loop predicates: the watchdog/HUNG path
    StuckAtFault(sm_id=0, hw_lane=0, unit=UnitType.SP, bit=0, stuck_to=1),
)


def corpus_spec(workload: str) -> CampaignSpec:
    return CampaignSpec(workload=workload, config=GPUConfig.small(1),
                        dmr=DMRConfig.paper_default(), scale=0.25, seed=0)


def corpus_faults(engine: CampaignEngine) -> list:
    horizon = engine.golden_result().cycles
    sampler = FaultSampler(engine.spec.config, windows=2)
    return (sampler.sample(TRANSIENTS_PER_WORKLOAD, horizon,
                           seed=CORPUS_SEED)
            + list(STUCK_ATS))


def generate() -> dict:
    """Classify the whole corpus; returns the JSON payload."""
    entries = []
    for workload in WORKLOADS:
        engine = CampaignEngine(corpus_spec(workload))
        for run in engine.run(corpus_faults(engine)).runs:
            entries.append({
                "workload": workload,
                "fault": fault_to_payload(run.fault),
                "outcome": run.outcome.value,
                "detections": run.detections,
                "activations": run.activations,
            })
    return {
        "description": ("Exact fault classifications under "
                        "GPUConfig.small(1) + DMRConfig.paper_default(), "
                        "scale 0.25, seed 0; regenerate with "
                        "python -m tests.faults.golden_corpus"),
        "schema": 1,
        "sampler_seed": CORPUS_SEED,
        "entries": entries,
    }


def load() -> dict:
    with open(CORPUS_PATH, encoding="utf-8") as handle:
        return json.load(handle)


def entry_fault(entry: dict):
    return fault_from_payload(entry["fault"])


def main() -> None:
    payload = generate()
    with open(CORPUS_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {CORPUS_PATH} ({len(payload['entries'])} entries)")


if __name__ == "__main__":
    main()
