"""Golden fault-outcome corpus: generation and shared plumbing.

``golden_outcomes.json`` pins the exact classification of the same ~50
seeded faults per workload under every detection scheme: Warped-DMR
(``dmr``), the Hamming(72,64) ECC baseline (``secded``) and partial
thread protection at a fixed PC budget (``partial``, with the
protected set selected deterministically from the DMR runs' own
detection PCs).  The replay test
(:mod:`tests.faults.test_golden_corpus`) re-simulates every entry and
compares outcome, detection count and activation count — any drift in
the simulator, the DMR verifiers, the SECDED codec/backend, the
partial-protection gates, the fault models or the watchdog shows up as
a diff against numbers that were reviewed when checked in.

Regenerate (after an *intentional* semantic change) with::

    PYTHONPATH=src python -m tests.faults.golden_corpus

and review the JSON diff like source.
"""

from __future__ import annotations

import json
import pathlib

from repro.baselines.partial import select_protected_pcs, \
    vulnerability_profile
from repro.common.config import DMRConfig, GPUConfig
from repro.faults.campaign import CampaignEngine, CampaignSpec
from repro.faults.models import StuckAtFault, fault_from_payload, \
    fault_to_payload
from repro.faults.sampler import FaultSampler
from repro.isa.opcodes import UnitType

CORPUS_PATH = pathlib.Path(__file__).with_name("golden_outcomes.json")

#: corpus shape: 14 stratified transients + 4 stuck-ats per workload,
#: classified under each of the three detection schemes
WORKLOADS = ("scan", "matrixmul", "laplace")
SCHEMES = ("dmr", "secded", "partial")
TRANSIENTS_PER_WORKLOAD = 14
CORPUS_SEED = 2012  # the paper's year; arbitrary but fixed

#: protected-PC budget of the ``partial`` scheme's corpus entries
PARTIAL_BUDGET = 4

STUCK_ATS = (
    StuckAtFault(sm_id=0, hw_lane=2, unit=UnitType.SP, bit=3, stuck_to=1),
    StuckAtFault(sm_id=0, hw_lane=7, unit=UnitType.LDST, bit=1, stuck_to=0),
    StuckAtFault(sm_id=0, hw_lane=13, unit=UnitType.SFU, bit=5, stuck_to=1),
    # bit 0 stuck-to-1 corrupts loop predicates: the watchdog/HUNG path
    StuckAtFault(sm_id=0, hw_lane=0, unit=UnitType.SP, bit=0, stuck_to=1),
)


def corpus_spec(workload: str, scheme: str = "dmr",
                partial_pcs=()) -> CampaignSpec:
    config = GPUConfig.small(1)
    if scheme == "dmr":
        return CampaignSpec(workload=workload, config=config,
                            dmr=DMRConfig.paper_default(), scale=0.25, seed=0)
    if scheme == "secded":
        return CampaignSpec(workload=workload, config=config,
                            dmr=DMRConfig.disabled(), scale=0.25, seed=0,
                            scheme="secded")
    if scheme == "partial":
        dmr = DMRConfig.paper_default().with_protected_pcs(partial_pcs)
        return CampaignSpec(workload=workload, config=config, dmr=dmr,
                            scale=0.25, seed=0)
    raise ValueError(f"unknown corpus scheme {scheme!r}")


def partial_selection(dmr_runs) -> tuple:
    """The ``partial`` scheme's protected PCs, from the DMR runs."""
    return select_protected_pcs(vulnerability_profile(dmr_runs),
                                PARTIAL_BUDGET)


def corpus_faults(engine: CampaignEngine) -> list:
    horizon = engine.golden_result().cycles
    sampler = FaultSampler(engine.spec.config, windows=2)
    return (sampler.sample(TRANSIENTS_PER_WORKLOAD, horizon,
                           seed=CORPUS_SEED)
            + list(STUCK_ATS))


def generate() -> dict:
    """Classify the whole corpus; returns the JSON payload."""
    entries = []
    partial_pcs = {}
    for workload in WORKLOADS:
        engine = CampaignEngine(corpus_spec(workload))
        faults = corpus_faults(engine)
        dmr_runs = engine.run(faults).runs
        pcs = partial_selection(dmr_runs)
        partial_pcs[workload] = list(pcs)
        runs_by_scheme = {
            "dmr": dmr_runs,
            "secded": CampaignEngine(
                corpus_spec(workload, "secded")).run(faults).runs,
            "partial": CampaignEngine(
                corpus_spec(workload, "partial", pcs)).run(faults).runs,
        }
        for scheme in SCHEMES:
            for run in runs_by_scheme[scheme]:
                entries.append({
                    "workload": workload,
                    "scheme": scheme,
                    "fault": fault_to_payload(run.fault),
                    "outcome": run.outcome.value,
                    "detections": run.detections,
                    "activations": run.activations,
                })
    return {
        "description": ("Exact fault classifications under "
                        "GPUConfig.small(1), scale 0.25, seed 0, for each "
                        "detection scheme (dmr / secded / partial); "
                        "regenerate with python -m tests.faults.golden_corpus"),
        "schema": 2,
        "sampler_seed": CORPUS_SEED,
        "partial_budget": PARTIAL_BUDGET,
        "partial_pcs": partial_pcs,
        "entries": entries,
    }


def load() -> dict:
    with open(CORPUS_PATH, encoding="utf-8") as handle:
        return json.load(handle)


def entry_fault(entry: dict):
    return fault_from_payload(entry["fault"])


def main() -> None:
    payload = generate()
    with open(CORPUS_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {CORPUS_PATH} ({len(payload['entries'])} entries)")


if __name__ == "__main__":
    main()
