"""Self-healing layer tests: fsck, poison, heartbeats, backpressure.

Most cases run against synthetic jobs (no simulation) so the whole
corruption matrix iterates in milliseconds; a handful use a real mini
campaign to pin the properties that only hold end-to-end (replanned
units are byte-identical, repaired jobs finish with zero extra
simulations).  The fleet-scale proof lives in
``tests/resilience/test_fabric_chaos.py``.
"""

import json
import os
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import CodecError, ReproError, StoreDegraded
from repro.service.codec import decode_canonical, encode_canonical
from repro.service.health import (FsckReport, classify_error_type,
                                  diagnose_poison, fsck_job, fsck_store,
                                  format_fsck, regenerate_lost_units,
                                  update_poison_verdicts, worker_health)
from repro.service.store import (JobStore, canonical_json, job_id_for,
                                 unit_id_for)


def make_job(store: JobStore, n_units: int = 4, tag: str = "health") -> str:
    material = {"kind": "campaign", "test": tag, "n": n_units}
    units = [
        {"unit": unit_id_for(job_id_for(material), i, [i]),
         "index": i, "kind": "campaign", "items": [i]}
        for i in range(n_units)
    ]
    job_id, created = store.create_job(
        {"kind": "campaign", "material": material}, units)
    assert created
    return job_id


def result_for(unit: dict) -> dict:
    """A shape-valid synthetic campaign result for ``unit``."""
    return {"unit": unit["unit"], "runs": [0] * len(unit["items"])}


def finish_unit(store: JobStore, job_id: str, owner: str = "w") -> str:
    """Claim, publish and complete one unit; returns its id."""
    unit, claim = store.claim_unit(job_id, owner)
    store.publish_result(job_id, unit["unit"], result_for(unit))
    store.complete_unit(job_id, unit["unit"], claim)
    return unit["unit"]


# ----------------------------------------------------------------------
# Satellite: canonical-JSON codec rejects NaN/Infinity, round-trips
# ----------------------------------------------------------------------
class TestCanonicalCodec:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_non_finite_floats_rejected(self, bad):
        with pytest.raises(CodecError):
            encode_canonical({"value": bad})
        with pytest.raises(CodecError):
            canonical_json({"nested": [1, {"x": bad}]})

    def test_codec_error_is_a_repro_error(self):
        assert issubclass(CodecError, ReproError)

    def test_decode_rejects_torn_text(self):
        with pytest.raises(CodecError):
            decode_canonical('{"torn": ')

    json_payloads = st.recursive(
        st.none() | st.booleans() | st.integers(-2**53, 2**53)
        | st.floats(allow_nan=False, allow_infinity=False, width=64)
        | st.text(max_size=20),
        lambda children: (st.lists(children, max_size=4)
                          | st.dictionaries(st.text(max_size=8), children,
                                            max_size=4)),
        max_leaves=20,
    )

    @settings(max_examples=60, deadline=None)
    @given(payload=json_payloads)
    def test_round_trip_is_byte_identical(self, payload):
        text = encode_canonical(payload)
        assert text.endswith("\n")
        assert encode_canonical(decode_canonical(text)) == text


# ----------------------------------------------------------------------
# Backpressure / degraded mode
# ----------------------------------------------------------------------
class TestAdmission:
    def test_disk_pressure_refuses_before_writing(self, tmp_path):
        store = JobStore(tmp_path / "store", min_free_bytes=2**62)
        with pytest.raises(StoreDegraded) as excinfo:
            make_job(store)
        assert excinfo.value.reason == "disk_pressure"
        assert store.list_jobs() == []  # nothing half-written
        assert store.registry.counters()["store_degraded_rejections"] == 1

    def test_quarantine_rate_refuses_new_jobs(self, tmp_path):
        store = JobStore(tmp_path / "store", max_quarantine_fraction=0.4)
        job_id = make_job(store)
        # corrupt every unit so most artifacts quarantine
        for name in store.pending_units(job_id):
            (store._units_dir(job_id) / f"{name}.json").write_text("torn{")
        assert store.claim_unit(job_id, "probe") is None
        with pytest.raises(StoreDegraded) as excinfo:
            make_job(store, tag="rejected")
        assert excinfo.value.reason == "quarantine_rate"

    def test_healthy_store_admits(self, tmp_path):
        store = JobStore(tmp_path / "store")
        store.check_admission()  # must not raise
        assert make_job(store)


# ----------------------------------------------------------------------
# Corruption tolerance on the store read paths
# ----------------------------------------------------------------------
class TestReadPathTolerance:
    def test_torn_result_quarantined_and_reported_absent(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = make_job(store)
        unit_id = finish_unit(store, job_id)
        path = store._results_dir(job_id) / f"{unit_id}.json"
        path.write_text('{"unit": "tor')
        assert store.unit_result(job_id, unit_id) is None
        assert f"{unit_id}.json" in store.quarantined_files(job_id)
        assert store.registry.counters()["store_corrupt_results"] == 1

    def test_foreign_result_quarantined(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = make_job(store)
        unit_id = finish_unit(store, job_id)
        path = store._results_dir(job_id) / f"{unit_id}.json"
        path.write_text(canonical_json({"unit": "u9999-not-me"}))
        assert store.unit_result(job_id, unit_id) is None
        assert store.registry.counters()["store_corrupt_results"] == 1

    def test_corrupt_unit_never_reaches_a_worker(self, tmp_path):
        store = JobStore(tmp_path, registry=None)
        job_id = make_job(store, n_units=2)
        first = store.pending_units(job_id)[0]
        (store._units_dir(job_id) / f"{first}.json").write_text("{ torn")
        claimed = store.claim_unit(job_id, "w")
        # the torn unit is skipped (quarantined), the good one served
        assert claimed is not None and claimed[0]["unit"] != first
        assert store.registry.counters()["store_corrupt_units"] == 1

    def test_bitflipped_unit_fails_digest_check(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = make_job(store, n_units=1)
        unit_id = store.pending_units(job_id)[0]
        path = store._units_dir(job_id) / f"{unit_id}.json"
        payload = json.loads(path.read_text())
        payload["items"] = [999]  # parses fine, digest no longer matches
        path.write_text(canonical_json(payload))
        assert store.claim_unit(job_id, "w") is None
        assert store.registry.counters()["store_corrupt_units"] == 1

    def test_torn_merged_quarantined(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = make_job(store)
        store.merged_path(job_id).write_text("not json")
        assert store.read_merged(job_id) is None
        assert store.registry.counters()["store_corrupt_merged"] == 1

    def test_torn_manifest_counted_but_preserved(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = make_job(store)
        manifest = store.job_dir(job_id) / "job.json"
        manifest.write_text("{ torn manifest")
        assert store.load_job(job_id) is None
        assert manifest.exists()  # evidence for the operator, not moved
        assert store.registry.counters()["store_corrupt_manifests"] == 1


# ----------------------------------------------------------------------
# Satellite: the requeue-adoption race fix
# ----------------------------------------------------------------------
class TestRequeueAdoption:
    def test_result_published_in_race_window_is_adopted(self, tmp_path,
                                                        monkeypatch):
        store = JobStore(tmp_path)
        job_id = make_job(store, n_units=1)
        unit, claim = store.claim_unit(job_id, "slow-worker")
        unit_id = unit["unit"]
        past = time.time() - 1000
        os.utime(claim, (past, past))  # lease long expired

        # the still-live claimant publishes *between* requeue_expired's
        # pre-check and its rename — simulated by making the first
        # result read miss and publishing underneath it
        real = JobStore.unit_result
        calls = {"n": 0}

        def racy_unit_result(self, job, uid):
            calls["n"] += 1
            if calls["n"] == 1:
                store.publish_result(job, uid, result_for(unit))
                return None  # the pre-rename check saw nothing
            return real(self, job, uid)

        monkeypatch.setattr(JobStore, "unit_result", racy_unit_result)
        moved = store.requeue_expired(job_id, lease_seconds=1.0)

        # adopted, not double-attempted: the unit is done, not pending
        assert moved["completed"] == [unit_id]
        assert moved["requeued"] == []
        assert store.done_units(job_id) == [unit_id]
        assert store.pending_units(job_id) == []
        assert store.registry.counters()["store_requeue_adoptions"] == 1

    def test_unpublished_expired_claim_still_requeues(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = make_job(store, n_units=1)
        unit, claim = store.claim_unit(job_id, "dead-worker")
        past = time.time() - 1000
        os.utime(claim, (past, past))
        moved = store.requeue_expired(job_id, lease_seconds=1.0)
        assert moved["requeued"] == [unit["unit"]]
        assert store.pending_units(job_id) == [unit["unit"]]


# ----------------------------------------------------------------------
# fsck: detection and repair
# ----------------------------------------------------------------------
def fsck_one(store, job_id, repair):
    report = FsckReport(repair=repair)
    fsck_job(store, job_id, report, repair=repair, lease_seconds=1.0)
    return report


class TestFsckDetect:
    def test_clean_store_is_clean(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = make_job(store)
        finish_unit(store, job_id)
        report = fsck_store(store)
        assert report.clean
        assert report.jobs == 1
        assert report.units_verified == 3
        assert report.results_verified == 1
        assert "clean" in format_fsck(report)

    def test_audit_reports_without_touching(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = make_job(store)
        unit_id = finish_unit(store, job_id)
        victim = store._results_dir(job_id) / f"{unit_id}.json"
        victim.write_text("{ torn")
        report = fsck_one(store, job_id, repair=False)
        assert not report.clean
        assert victim.exists()  # audit never moves files
        assert all(f.action == "reported" for f in report.findings)
        assert "torn-result" in report.by_kind()

    def test_foreign_and_orphan_files_detected(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = make_job(store)
        (store._units_dir(job_id) / "tmpXYZ.tmp").write_text("{ half")
        (store._results_dir(job_id) / "u9999-feedbeef0000.json"
         ).write_text(canonical_json({"unit": "u9999-feedbeef0000"}))
        (store.job_dir(job_id) / "README.rogue").write_text("hello")
        kinds = fsck_one(store, job_id, repair=False).by_kind()
        assert kinds.get("foreign-file", 0) >= 2
        assert kinds.get("orphan-result") == 1

    def test_unrepairable_manifest_reported(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = make_job(store)
        (store.job_dir(job_id) / "job.json").write_text("{ torn")
        report = fsck_one(store, job_id, repair=True)
        assert report.by_kind() == {"corrupt-manifest": 1}


class TestFsckRepair:
    def test_corrupt_result_of_done_unit_requeues_it(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = make_job(store)
        unit_id = finish_unit(store, job_id)
        (store._results_dir(job_id) / f"{unit_id}.json").write_text("{ t")
        report = fsck_one(store, job_id, repair=True)
        kinds = report.by_kind()
        assert kinds.get("torn-result") == 1
        assert kinds.get("done-without-result") == 1
        assert unit_id not in store.done_units(job_id)
        assert f"{unit_id}.json" in store.quarantined_files(job_id)

    def test_foreign_files_quarantined_on_repair(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = make_job(store)
        rogue = store.job_dir(job_id) / "writer.tmp"
        rogue.write_text("{ half a write")
        report = fsck_one(store, job_id, repair=True)
        assert not rogue.exists()
        assert "writer.tmp" in store.quarantined_files(job_id)
        assert any(f.action == "quarantined" for f in report.findings)

    def test_valid_published_result_is_adopted_never_discarded(
            self, tmp_path):
        store = JobStore(tmp_path)
        job_id = make_job(store)
        # publish a valid result with no claim/done bookkeeping at all
        unit_id = store.pending_units(job_id)[0]
        payload = {"unit": unit_id, "runs": [0]}
        store.publish_result(job_id, unit_id, payload)
        report = fsck_one(store, job_id, repair=True)
        assert "unadopted-result" in report.by_kind()
        assert unit_id in store.done_units(job_id)
        assert unit_id not in store.pending_units(job_id)
        # the result file itself was never moved
        assert store.unit_result(job_id, unit_id) == payload

    def test_orphan_done_marker_removed(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = make_job(store)
        done = store._done_dir(job_id)
        done.mkdir(parents=True, exist_ok=True)
        (done / "u9999-000000000000").touch()
        fsck_one(store, job_id, repair=True)
        assert "u9999-000000000000" not in store.done_units(job_id)

    def test_expired_claim_with_result_completed(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = make_job(store)
        unit, claim = store.claim_unit(job_id, "dead")
        store.publish_result(job_id, unit["unit"], result_for(unit))
        past = time.time() - 1000
        os.utime(claim, (past, past))
        report = fsck_one(store, job_id, repair=True)
        assert any(f.kind == "expired-claim" and f.action == "completed"
                   for f in report.findings)
        assert unit["unit"] in store.done_units(job_id)

    def test_repair_then_audit_is_clean_for_repairable_damage(
            self, tmp_path):
        store = JobStore(tmp_path)
        job_id = make_job(store)
        unit_id = finish_unit(store, job_id)
        (store._units_dir(job_id) / "junk.tmp").write_text("x")
        (store.job_dir(job_id) / "NOTES").write_text("op")
        store.merged_path(job_id).write_text("torn merged")
        fsck_one(store, job_id, repair=True)
        # synthetic jobs cannot replan, so only structural damage heals;
        # none was unit-destroying here -> second audit must be clean
        report = fsck_one(store, job_id, repair=False)
        assert report.clean, [f.__dict__ for f in report.findings]
        assert store.unit_result(job_id, unit_id) is not None


class TestFsckRegeneration:
    """Real-campaign cases: replanned units are byte-identical."""

    @pytest.fixture(scope="class")
    def campaign_store(self, tmp_path_factory):
        from repro.analysis.runner import experiment_config
        from repro.common.config import DMRConfig
        from repro.faults.campaign import CampaignSpec
        from repro.service.jobs import submit_campaign_job

        store = JobStore(tmp_path_factory.mktemp("regen") / "store")
        spec = CampaignSpec(
            workload="scan", config=experiment_config(num_sms=1),
            dmr=DMRConfig.paper_default(), scale=0.3, seed=0,
        )
        job_id, created = submit_campaign_job(store, spec, samples=6,
                                              unit_size=3)
        assert created
        return store, job_id

    def test_deleted_unit_regenerated_byte_identical(self, campaign_store):
        store, job_id = campaign_store
        unit_id = store.pending_units(job_id)[0]
        path = store._units_dir(job_id) / f"{unit_id}.json"
        original = path.read_bytes()
        path.unlink()
        report = fsck_one(store, job_id, repair=True)
        assert any(f.kind == "lost-unit" and f.action == "regenerated"
                   for f in report.findings)
        assert path.read_bytes() == original

    def test_janitor_regenerates_lost_units(self, campaign_store):
        store, job_id = campaign_store
        unit_id = store.pending_units(job_id)[-1]
        path = store._units_dir(job_id) / f"{unit_id}.json"
        original = path.read_bytes()
        path.unlink()
        assert regenerate_lost_units(store, job_id) == [unit_id]
        assert path.read_bytes() == original

    def test_janitor_adopts_published_over_regenerating(self,
                                                        campaign_store):
        store, job_id = campaign_store
        unit_id = store.pending_units(job_id)[0]
        (store._units_dir(job_id) / f"{unit_id}.json").unlink()
        store.publish_result(job_id, unit_id, {"unit": unit_id,
                                               "runs": []})
        assert regenerate_lost_units(store, job_id) == []
        assert unit_id in store.done_units(job_id)
        # clean up the fabricated result for the other tests
        store.quarantine_result(job_id, unit_id)
        store.reopen_unit(job_id, unit_id)
        assert regenerate_lost_units(store, job_id) == [unit_id]


# ----------------------------------------------------------------------
# Poison diagnosis
# ----------------------------------------------------------------------
def park_unit(store, job_id, errors):
    """Fail one unit through MAX_UNIT_ATTEMPTS with the given errors."""
    for message, error_type, trace in errors:
        unit, claim = store.claim_unit(job_id, "crashy")
        parked = store.fail_unit(job_id, unit["unit"], claim, message,
                                 error_type=error_type,
                                 traceback_text=trace, owner="crashy")
    assert parked
    return unit["unit"]


class TestPoisonDiagnosis:
    def test_classify_error_type_taxonomy(self):
        assert classify_error_type("TransientWorkerFailure") == "transient"
        assert classify_error_type("TaskTimeout") == "transient"
        assert classify_error_type("SimulationError") == "permanent"
        assert classify_error_type("DMRViolation") == "permanent"
        assert classify_error_type("AssertionError") == "permanent"
        assert classify_error_type("OSError") == "transient"
        assert classify_error_type("") == "transient"

    def test_same_traceback_every_attempt_is_deterministic(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = make_job(store, n_units=1)
        unit_id = park_unit(store, job_id, [
            ("'spec'", "KeyError", "tb-one")] * 3)
        verdict = diagnose_poison(store, job_id, unit_id)
        assert verdict["classification"] == "deterministic"
        assert verdict["attempts"] == 3
        assert verdict["distinct_failures"] == ["KeyError: 'spec'"]

    def test_distinct_tracebacks_are_flaky(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = make_job(store, n_units=1)
        unit_id = park_unit(store, job_id, [
            ("ConnectionError: a", "ConnectionError", "tb-a"),
            ("OSError: b", "OSError", "tb-b"),
            ("ConnectionError: c", "ConnectionError", "tb-c"),
        ])
        verdict = diagnose_poison(store, job_id, unit_id)
        assert verdict["classification"] == "flaky"
        assert len(verdict["distinct_failures"]) == 3

    def test_repro_error_types_classify_permanent_sim(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = make_job(store, n_units=1)
        unit_id = park_unit(store, job_id, [
            ("SimulationError: lane out of range", "SimulationError",
             "tb")] * 3)
        verdict = diagnose_poison(store, job_id, unit_id)
        assert verdict["classification"] == "permanent-sim"

    def test_update_poison_verdicts_is_deterministic(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = make_job(store, n_units=1)
        park_unit(store, job_id, [("boom", "ValueError", "tb")] * 3)
        verdicts = update_poison_verdicts(store, job_id)
        assert len(verdicts) == 1
        first = store.poison_path(job_id).read_bytes()
        update_poison_verdicts(store, job_id)
        assert store.poison_path(job_id).read_bytes() == first
        assert store.read_poison(job_id)["units"] == verdicts

    def test_job_status_surfaces_poison_and_quarantine(self, tmp_path):
        from repro.service.server import format_status, job_status

        store = JobStore(tmp_path)
        job_id = make_job(store, n_units=2)
        park_unit(store, job_id, [("boom", "AssertionError", "tb")] * 3)
        update_poison_verdicts(store, job_id)
        (store._results_dir(job_id) / "junk.json").write_text("{ t")
        store.unit_result(job_id, "junk")  # quarantines it
        status = job_status(store, job_id)
        assert status["quarantined"] == 1
        assert status["poisoned"][0]["classification"] == "permanent-sim"
        line = format_status(status)
        assert "poisoned=1(permanent-sim)" in line
        assert "quarantined=1" in line


# ----------------------------------------------------------------------
# Worker heartbeats and fleet health
# ----------------------------------------------------------------------
class TestWorkerHealthRecords:
    def test_beat_and_alive_stale_annotation(self, tmp_path):
        store = JobStore(tmp_path)
        store.beat("w-1", {"units_done": 3})
        records = worker_health(store, stale_after=30.0)
        assert [r["owner"] for r in records] == ["w-1"]
        assert records[0]["state"] == "alive"
        assert records[0]["units_done"] == 3
        later = time.time() + 100
        stale = worker_health(store, stale_after=30.0, now=later)
        assert stale[0]["state"] == "stale"

    def test_torn_heartbeat_quarantined(self, tmp_path):
        store = JobStore(tmp_path)
        store.workers_dir.mkdir(parents=True, exist_ok=True)
        (store.workers_dir / "broken.json").write_text("{ torn beat")
        assert worker_health(store) == []
        assert store.registry.counters()["store_corrupt_heartbeats"] == 1
        assert (store.workers_dir / "quarantine" / "broken.json").exists()

    def test_remove_worker_record(self, tmp_path):
        store = JobStore(tmp_path)
        store.beat("w-gone", {})
        store.remove_worker_record("w-gone")
        assert worker_health(store) == []

    def test_fsck_repair_drops_long_dead_workers(self, tmp_path):
        store = JobStore(tmp_path)
        store.beat("w-dead", {})
        later = time.time() + 10_000
        report = fsck_store(store, repair=True, lease_seconds=1.0,
                            stale_after=1.0, now=later)
        assert any(f.kind == "dead-worker" for f in report.findings)
        assert worker_health(store) == []

    def test_store_status_lists_workers(self, tmp_path):
        from repro.service.server import format_workers, store_status

        store = JobStore(tmp_path)
        store.beat("w-2", {"units_done": 1, "simulations": 5})
        summary = store_status(store)
        assert summary["workers"][0]["owner"] == "w-2"
        assert "store_quarantined" in summary["counters"]
        lines = format_workers(summary["workers"])
        assert "w-2" in lines[0] and "alive" in lines[0]


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestServeFsckCli:
    def test_fsck_clean_store_exits_zero(self, tmp_path, capsys):
        from repro.__main__ import main

        store = JobStore(tmp_path / "store")
        make_job(store)
        assert main(["serve", "fsck", "--store",
                     str(tmp_path / "store")]) == 0
        assert "store: clean" in capsys.readouterr().out

    def test_fsck_audit_flags_damage_then_repair_heals(self, tmp_path,
                                                       capsys):
        from repro.__main__ import main

        root = str(tmp_path / "store")
        store = JobStore(root)
        job_id = make_job(store)
        (store.job_dir(job_id) / "junk.tmp").write_text("{ half")

        assert main(["serve", "fsck", "--store", root]) == 1
        out = capsys.readouterr().out
        assert "foreign-file" in out and "audit only" in out

        assert main(["serve", "fsck", "--store", root, "--repair"]) == 0
        capsys.readouterr()
        assert main(["serve", "fsck", "--store", root]) == 0

    def test_fsck_json_report(self, tmp_path, capsys):
        from repro.__main__ import main

        root = str(tmp_path / "store")
        store = JobStore(root)
        job_id = make_job(store)
        assert main(["serve", "fsck", job_id, "--store", root,
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["jobs"] == 1
