"""Claim-protocol tests: exactly-once claims, recovery, no lost units.

These exercise the job store with synthetic units (no simulation), so
they can race many claimers and iterate the recovery paths quickly.
The full-stack crash test (SIGKILL a real worker process mid-unit)
lives in ``test_service_campaign.py``.
"""

import json
import threading

import pytest

from repro.service.store import (MAX_UNIT_ATTEMPTS, JobStore,
                                 canonical_json, job_id_for, sanitize_owner,
                                 unit_id_for)


def make_job(store: JobStore, n_units: int = 8) -> str:
    material = {"kind": "campaign", "test": "claims", "n": n_units}
    units = [
        {"unit": unit_id_for(job_id_for(material), i, [i]),
         "index": i, "kind": "campaign", "items": [i]}
        for i in range(n_units)
    ]
    job_id, created = store.create_job(
        {"kind": "campaign", "material": material}, units)
    assert created
    return job_id


class TestJobIdentity:
    def test_job_id_content_addressed(self):
        material = {"kind": "campaign", "seed": 3}
        assert job_id_for(material) == job_id_for(dict(material))
        assert job_id_for(material) != job_id_for({**material, "seed": 4})

    def test_resubmit_is_idempotent(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = make_job(store)
        material = {"kind": "campaign", "test": "claims", "n": 8}
        again, created = store.create_job(
            {"kind": "campaign", "material": material}, [])
        assert again == job_id and not created
        # the original units are untouched by the no-op resubmission
        assert len(store.pending_units(job_id)) == 8

    def test_canonical_json_is_stable(self):
        a = canonical_json({"b": 1, "a": [1.5, None, "x"]})
        b = canonical_json({"a": [1.5, None, "x"], "b": 1})
        assert a == b and a.endswith("\n")
        assert json.loads(a) == {"a": [1.5, None, "x"], "b": 1}

    def test_sanitize_owner(self):
        assert sanitize_owner("host-1.local_9") == "host-1.local_9"
        assert "/" not in sanitize_owner("evil/../owner")


class TestClaimProtocol:
    def test_exactly_once_across_racing_threads(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = make_job(store, n_units=24)
        won = []
        lock = threading.Lock()

        def claimer(owner):
            while True:
                claimed = store.claim_unit(job_id, owner)
                if claimed is None:
                    return
                unit, claim = claimed
                with lock:
                    won.append((unit["unit"], owner))
                store.publish_result(job_id, unit["unit"],
                                     {"unit": unit["unit"]})
                store.complete_unit(job_id, unit["unit"], claim)

        threads = [threading.Thread(target=claimer, args=(f"w{i}",))
                   for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        unit_ids = [unit for unit, _ in won]
        assert len(unit_ids) == 24
        assert len(set(unit_ids)) == 24  # every unit claimed exactly once
        counts = store.counts(job_id)
        assert counts["done"] == 24 and counts["pending"] == 0
        assert counts["claimed"] == 0 and counts["failed"] == 0

    def test_claim_returns_payload_and_marks_in_flight(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = make_job(store, n_units=2)
        unit, claim = store.claim_unit(job_id, "w1")
        assert unit["items"] == [unit["index"]]
        assert claim.exists()
        assert store.counts(job_id) == {
            "total": 2, "pending": 1, "claimed": 1, "done": 0, "failed": 0,
        }

    def test_requeue_expired_reclaims_dead_workers_unit(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = make_job(store, n_units=1)
        unit, _claim = store.claim_unit(job_id, "dead")
        # lease 0: the claim is immediately stealable
        moved = store.requeue_expired(job_id, lease_seconds=0.0)
        assert moved == {"requeued": [unit["unit"]], "completed": []}
        # the unit is claimable again, by anyone
        again = store.claim_unit(job_id, "alive")
        assert again is not None and again[0]["unit"] == unit["unit"]

    def test_requeue_completes_orphaned_result(self, tmp_path):
        # worker died between publish_result and complete_unit: the
        # result must be adopted, never recomputed
        store = JobStore(tmp_path)
        job_id = make_job(store, n_units=1)
        unit, _claim = store.claim_unit(job_id, "dead")
        store.publish_result(job_id, unit["unit"], {"unit": unit["unit"]})
        moved = store.requeue_expired(job_id, lease_seconds=0.0)
        assert moved == {"requeued": [], "completed": [unit["unit"]]}
        counts = store.counts(job_id)
        assert counts["done"] == 1 and counts["pending"] == 0

    def test_live_lease_is_not_stolen(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = make_job(store, n_units=1)
        store.claim_unit(job_id, "alive")
        moved = store.requeue_expired(job_id, lease_seconds=300.0)
        assert moved == {"requeued": [], "completed": []}
        assert store.counts(job_id)["claimed"] == 1

    def test_failed_unit_requeues_then_parks(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = make_job(store, n_units=1)
        for attempt in range(1, MAX_UNIT_ATTEMPTS + 1):
            claimed = store.claim_unit(job_id, "flaky")
            assert claimed is not None, f"attempt {attempt} not claimable"
            unit, claim = claimed
            parked = store.fail_unit(job_id, unit["unit"], claim, "boom")
            assert parked == (attempt == MAX_UNIT_ATTEMPTS)
        counts = store.counts(job_id)
        assert counts["failed"] == 1 and counts["pending"] == 0
        assert store.claim_unit(job_id, "flaky") is None

    def test_result_files_are_byte_idempotent(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = make_job(store, n_units=1)
        payload = {"unit": "u", "runs": [{"outcome": "masked"}]}
        store.publish_result(job_id, "u0", payload)
        first = (store._results_dir(job_id) / "u0.json").read_bytes()
        store.publish_result(job_id, "u0", json.loads(json.dumps(payload)))
        assert (store._results_dir(job_id) / "u0.json").read_bytes() == first

    def test_telemetry_kept_out_of_results(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = make_job(store, n_units=1)
        store.publish_telemetry(job_id, "u0", "w1",
                                {"unit": "u0", "owner": "w1",
                                 "simulations": 3, "seconds": 0.5})
        records = store.telemetry(job_id)
        assert len(records) == 1 and records[0]["simulations"] == 3
        assert store.unit_result(job_id, "u0") is None


class TestStoreLayout:
    def test_jobs_without_manifest_are_invisible(self, tmp_path):
        store = JobStore(tmp_path)
        (store.jobs_dir / "half-planned").mkdir(parents=True)
        assert store.list_jobs() == []

    def test_cache_dir_defaults_under_root(self, tmp_path):
        store = JobStore(tmp_path / "s")
        assert store.cache_dir == tmp_path / "s" / "cache"
        override = JobStore(tmp_path / "s", cache_dir=tmp_path / "shared")
        assert override.cache_dir == tmp_path / "shared"
