"""Worker-loop health: heartbeats, the idle-pass janitor, and
MAX_UNIT_ATTEMPTS poison parking.

These cover the worker side of the self-healing fabric end-to-end: a
lone worker on a damaged store (abandoned claims, deleted unit files,
crash-looping units) must converge to the same terminal state a clean
fleet would, leaving a poison verdict instead of spinning on units
that can never succeed.
"""

import pytest

from repro.analysis.runner import experiment_config
from repro.common.config import DMRConfig
from repro.faults.campaign import CampaignSpec
from repro.service.jobs import submit_campaign_job
from repro.service.server import job_status
from repro.service.store import (MAX_UNIT_ATTEMPTS, JobStore, job_id_for,
                                 unit_id_for)
from repro.service.worker import ServiceWorker

SAMPLES = 6
UNIT_SIZE = 2


def make_synthetic_job(store: JobStore, n_units: int = 1) -> str:
    """A planned job with no spec: every execution attempt must fail."""
    material = {"kind": "campaign", "test": "worker-health", "n": n_units}
    units = [
        {"unit": unit_id_for(job_id_for(material), i, [i]),
         "index": i, "kind": "campaign", "items": [i]}
        for i in range(n_units)
    ]
    job_id, created = store.create_job(
        {"kind": "campaign", "material": material}, units)
    assert created
    return job_id


def submit_mini_campaign(store: JobStore) -> str:
    spec = CampaignSpec(
        workload="scan", config=experiment_config(num_sms=1),
        dmr=DMRConfig.paper_default(), scale=0.3, seed=0,
    )
    job_id, created = submit_campaign_job(store, spec, samples=SAMPLES,
                                          unit_size=UNIT_SIZE)
    assert created
    return job_id


class TestIdlePassJanitor:
    def test_lone_worker_heals_abandoned_claim_and_lost_unit(
            self, tmp_path):
        store = JobStore(tmp_path / "store", cache_dir=tmp_path / "cache")
        job_id = submit_mini_campaign(store)

        # a worker dies holding a claim...
        dead = store.claim_unit(job_id, "w-dead")
        assert dead is not None
        # ...and corruption eats one still-pending unit file entirely
        lost = store.pending_units(job_id)[0]
        (store._units_dir(job_id) / f"{lost}.json").unlink()

        worker = ServiceWorker(store, owner="medic", lease_seconds=0.0)
        summary = worker.run(max_idle=2.0, poll=0.05)

        status = job_status(store, job_id)
        assert status["state"] == "done"
        assert status["counts"]["done"] == status["counts"]["total"]
        # every sample simulated exactly once, by this worker
        assert summary["simulations"] == SAMPLES
        assert status["simulations"] == SAMPLES
        assert summary["units_failed"] == 0

    def test_clean_exit_withdraws_heartbeat(self, tmp_path):
        store = JobStore(tmp_path / "store", cache_dir=tmp_path / "cache")
        submit_mini_campaign(store)
        worker = ServiceWorker(store, owner="transient", lease_seconds=0.0)

        worker.run_once()  # first pass always beats
        assert [r["owner"] for r in store.worker_records()] == ["transient"]

        worker.run(max_idle=0.5, poll=0.05)
        assert store.worker_records() == []

    def test_worker_skips_torn_manifest_without_burning_attempts(
            self, tmp_path):
        store = JobStore(tmp_path / "store")
        job_id = make_synthetic_job(store)
        (store.job_dir(job_id) / "job.json").write_text("{ torn")

        worker = ServiceWorker(store, owner="w", lease_seconds=0.0)
        assert worker.run_once() is None
        # the unit is still pristine: no claim, no attempt record
        unit_id = store.pending_units(job_id)[0]
        assert store.counts(job_id)["claimed"] == 0
        assert store.unit_attempts(job_id, unit_id) == []


class TestPoisonParking:
    @pytest.fixture()
    def parked(self, tmp_path):
        """Run a worker against a job whose unit always crashes."""
        store = JobStore(tmp_path / "store")
        job_id = make_synthetic_job(store)
        worker = ServiceWorker(store, owner="crashy", lease_seconds=0.0)
        worker.run(max_idle=0.5, poll=0.02)
        return store, job_id, worker

    def test_unit_parks_after_max_attempts(self, parked):
        store, job_id, worker = parked
        failed = store.failed_units(job_id)
        assert len(failed) == 1
        assert worker.units_failed == MAX_UNIT_ATTEMPTS
        attempts = store.unit_attempts(job_id, failed[0])
        assert len(attempts) == MAX_UNIT_ATTEMPTS
        assert all(a["error_type"] == "KeyError" for a in attempts)
        assert all(a["owner"] == "crashy" for a in attempts)
        assert all("Traceback" in a["traceback"] for a in attempts)

    def test_janitor_writes_deterministic_poison_verdict(self, parked):
        store, job_id, _ = parked
        poison = store.read_poison(job_id)
        assert poison is not None
        (verdict,) = poison["units"]
        assert verdict["unit"] == store.failed_units(job_id)[0]
        assert verdict["classification"] == "deterministic"
        assert verdict["attempts"] == MAX_UNIT_ATTEMPTS

    def test_job_status_reports_failed_with_poison(self, parked):
        store, job_id, _ = parked
        status = job_status(store, job_id)
        assert status["state"] == "failed"
        assert status["counts"]["failed"] == 1
        assert status["poisoned"][0]["classification"] == "deterministic"

    def test_parked_unit_is_not_reclaimed(self, parked):
        store, job_id, _ = parked
        assert store.claim_unit(job_id, "fresh-worker") is None
        assert store.pending_units(job_id) == []
