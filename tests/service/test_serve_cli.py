"""CLI surface of the service fabric: ``--version`` and ``serve``."""

import json

import pytest

from repro import __version__
from repro.__main__ import main


class TestVersionFlag:
    def test_version_flag_prints_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"


def submit_mini_campaign(store, capsys) -> str:
    assert main([
        "serve", "submit", "campaign", "scan", "--store", store,
        "--samples", "10", "--scale", "0.4", "--unit-size", "5",
    ]) == 0
    return capsys.readouterr().out.strip().splitlines()[0]


class TestServeRoundtrip:
    def test_submit_work_status_fetch(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        job_id = submit_mini_campaign(store, capsys)
        assert len(job_id) == 16

        # resubmission dedups onto the same job id
        assert submit_mini_campaign(store, capsys) == job_id

        # a single --worker invocation drains the 2-unit job
        assert main(["serve", "--worker", "--store", store,
                     "--max-idle", "0.5", "--poll", "0.05"]) == 0
        capsys.readouterr()

        assert main(["serve", "status", job_id, "--store", store,
                     "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["state"] == "done"
        assert status["version"] == __version__  # satellite: version in
        #                                          serve status output
        assert status["counts"]["done"] == status["counts"]["total"] == 2
        assert status["simulations"] == 10

        out_path = tmp_path / "merged.json"
        bench_path = tmp_path / "BENCH_service.json"
        assert main(["serve", "fetch", job_id, "--store", store,
                     "--out", str(out_path),
                     "--bench-out", str(bench_path)]) == 0
        merged = json.loads(out_path.read_text())
        assert merged["kind"] == "campaign" and len(merged["runs"]) == 10
        bench = json.loads(bench_path.read_text())
        assert bench["benchmark"] == "serve"
        assert bench["simulations"] == 10 and bench["units"] == 2

    def test_watch_reaches_done(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        job_id = submit_mini_campaign(store, capsys)
        assert main(["serve", "--worker", "--store", store,
                     "--max-idle", "0.5", "--poll", "0.05"]) == 0
        assert main(["serve", "watch", job_id, "--store", store,
                     "--timeout", "10", "--interval", "0.05"]) == 0
        assert capsys.readouterr().out.strip() == "done"

    def test_store_wide_status_lists_jobs(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        job_id = submit_mini_campaign(store, capsys)
        assert main(["serve", "status", "--store", store]) == 0
        out = capsys.readouterr().out
        assert job_id in out and __version__ in out

    def test_fetch_before_done_fails_cleanly(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        job_id = submit_mini_campaign(store, capsys)
        assert main(["serve", "fetch", job_id, "--store", store]) == 1

    def test_status_unknown_job(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["serve", "status", "nope", "--store", store,
                     "--json"]) == 1
        assert json.loads(capsys.readouterr().out)["state"] == "unknown"

    def test_server_start_until_idle(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        job_id = submit_mini_campaign(store, capsys)
        assert main(["serve", "--worker", "--store", store,
                     "--max-idle", "0.5", "--poll", "0.05"]) == 0
        # the janitor server loop exits once every job is finished
        assert main(["serve", "start", "--store", store, "--until-idle",
                     "--poll", "0.05"]) == 0
        assert main(["serve", "status", job_id, "--store", store,
                     "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["state"] == "done"
