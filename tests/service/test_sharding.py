"""Regression tests pinning the shared chunk-sizing heuristics.

The campaign engine and suite runner used to carry private copies of
this arithmetic; it now lives in ``repro.service.sharding`` and the
job planner depends on the exact boundaries (unit content addresses
cover their item slices).  These tests pin the boundaries the inline
code produced before the consolidation.
"""

import pytest

from repro.service.sharding import (CHUNKS_PER_WORKER, balanced_chunks,
                                    fanout_workers, pool_chunks,
                                    unit_chunks)


def _legacy_chunked(items, chunks):
    """The pre-fabric ``CampaignEngine._chunked`` implementation."""
    chunks = max(1, min(chunks, len(items)))
    size, extra = divmod(len(items), chunks)
    out, start = [], 0
    for index in range(chunks):
        end = start + size + (1 if index < extra else 0)
        out.append(items[start:end])
        start = end
    return out


class TestBalancedChunks:
    @pytest.mark.parametrize("n,chunks", [
        (1, 1), (5, 2), (7, 3), (8, 4), (40, 8), (41, 8), (100, 7),
        (3, 10),  # more chunks than items clamps to len(items)
    ])
    def test_matches_legacy_campaign_chunking(self, n, chunks):
        items = list(range(n))
        assert balanced_chunks(items, chunks) == _legacy_chunked(items,
                                                                 chunks)

    def test_pinned_boundaries(self):
        # the exact chunk boundaries CampaignEngine.run produced for a
        # 10-fault miss list across 2 workers (workers * 4 = 8 chunks)
        assert pool_chunks(list(range(10)), 2) == [
            [0, 1], [2, 3], [4], [5], [6], [7], [8], [9],
        ]

    def test_concatenation_reproduces_items(self):
        items = list(range(23))
        chunks = balanced_chunks(items, 5)
        assert [x for chunk in chunks for x in chunk] == items

    def test_sizes_differ_by_at_most_one_larger_first(self):
        sizes = [len(c) for c in balanced_chunks(list(range(17)), 5)]
        assert max(sizes) - min(sizes) <= 1
        assert sizes == sorted(sizes, reverse=True)

    def test_empty_input_yields_no_chunks(self):
        assert balanced_chunks([], 4) == []
        assert unit_chunks([]) == []


class TestFanoutWorkers:
    def test_matches_legacy_inline_clamp(self):
        # the clamp both runners applied:
        #   workers = min(workers, len(missing)) if missing else 0
        for requested in (1, 2, 4, 8):
            for pending in (0, 1, 3, 8, 100):
                legacy = (min(max(1, requested), pending) if pending
                          else 0)
                assert fanout_workers(requested, pending) == legacy

    def test_zero_pending_means_no_pool(self):
        assert fanout_workers(8, 0) == 0

    def test_at_least_one_worker_when_work_exists(self):
        assert fanout_workers(0, 5) == 1


class TestUnitChunks:
    def test_unit_size_bounds(self):
        chunks = unit_chunks(list(range(101)), unit_size=25)
        assert len(chunks) == 5
        assert all(len(c) <= 25 for c in chunks)
        assert [x for c in chunks for x in c] == list(range(101))

    def test_deterministic(self):
        items = list(range(57))
        assert unit_chunks(items, 10) == unit_chunks(items, 10)

    def test_chunks_per_worker_constant(self):
        # pool_chunks' fan-out factor is part of the pinned contract
        assert CHUNKS_PER_WORKER == 4
        assert len(pool_chunks(list(range(100)), 3)) == 12
