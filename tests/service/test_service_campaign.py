"""Acceptance tests for the distributed campaign fabric.

The ISSUE's acceptance criteria, as executable assertions:

* a campaign run through ``repro.service`` across >= 2 worker
  processes produces classifications, merged snapshots and merged JSON
  byte-identical to a serial in-process run;
* SIGKILLing a worker mid-campaign loses nothing and recomputes no
  completed unit (fleet-wide simulation count stays exactly the sample
  count);
* a warm resubmission (epoch bump over the same shared classification
  cache) completes with **zero** simulations and byte-identical merged
  output;
* a sharded figure job merges to exactly what its driver produces
  directly.
"""

import multiprocessing

import pytest

from repro.analysis.runner import experiment_config
from repro.common.config import DMRConfig
from repro.faults.campaign import CampaignSpec
from repro.service.jobs import (serial_merged_payload, submit_campaign_job,
                                submit_figure_job)
from repro.service.server import job_status, watch_job
from repro.service.store import JobStore, canonical_json
from repro.service.worker import ServiceWorker, worker_entry

#: one small, fast campaign shared by the whole module (sms=1 keeps a
#: faulty scan run ~50 ms; 24 samples ~= 1.5 s of simulation total)
SAMPLES = 24
UNIT_SIZE = 6  # -> 4 units, so two workers really interleave


def campaign_spec() -> CampaignSpec:
    return CampaignSpec(
        workload="scan", config=experiment_config(num_sms=1),
        dmr=DMRConfig.paper_default(), scale=0.4, seed=0,
    )


def drain(store: JobStore, owner: str) -> ServiceWorker:
    """Run an in-process worker until the store is fully idle.

    An idle pass runs the janitor, which may itself requeue expired
    claims (lease 0 here), so keep going until nothing is pending or
    in flight anywhere.
    """
    worker = ServiceWorker(store, owner=owner, lease_seconds=0.0)
    while True:
        if worker.run_once() is None:
            counts = [store.counts(job) for job in store.list_jobs()]
            if all(c["pending"] == 0 and c["claimed"] == 0
                   for c in counts):
                return worker


@pytest.fixture(scope="module")
def fabric(tmp_path_factory):
    """Cold distributed run across 2 real OS worker processes."""
    root = tmp_path_factory.mktemp("fabric")
    store = JobStore(root / "store")
    job_id, created = submit_campaign_job(store, campaign_spec(),
                                          samples=SAMPLES,
                                          unit_size=UNIT_SIZE)
    assert created
    workers = [
        multiprocessing.Process(
            target=worker_entry, args=(str(store.root),),
            kwargs={"owner": f"proc-{i}", "max_idle": 2.0, "poll": 0.05},
        )
        for i in range(2)
    ]
    for proc in workers:
        proc.start()
    for proc in workers:
        proc.join(timeout=120)
        assert proc.exitcode == 0
    status = watch_job(store, job_id, timeout=10.0, interval=0.05)
    assert status["state"] == "done"
    job = store.load_job(job_id)
    return {
        "store": store,
        "job_id": job_id,
        "job": job,
        "merged_bytes": canonical_json(store.read_merged(job_id)),
        "serial_bytes": canonical_json(serial_merged_payload(job)),
    }


class TestDistributedEqualsSerial:
    def test_merged_json_byte_identical_to_serial_run(self, fabric):
        assert fabric["merged_bytes"] == fabric["serial_bytes"]

    def test_runs_and_snapshot_match_serial(self, fabric):
        merged = fabric["store"].read_merged(fabric["job_id"])
        serial = serial_merged_payload(fabric["job"])
        assert merged["runs"] == serial["runs"]  # classification order too
        assert merged["snapshot"] == serial["snapshot"]
        assert merged["outcomes"] == serial["outcomes"]
        assert merged["coverage"] == serial["coverage"]

    def test_every_unit_done_exactly_once(self, fabric):
        counts = fabric["store"].counts(fabric["job_id"])
        assert counts["done"] == counts["total"] == 4
        assert counts["pending"] == counts["claimed"] == 0
        assert counts["failed"] == 0

    def test_fleetwide_simulations_equal_samples(self, fabric):
        # the shared cache makes classification exactly-once even
        # across racing processes: total simulations == fault samples
        status = job_status(fabric["store"], fabric["job_id"])
        assert status["simulations"] == SAMPLES
        assert status["state"] == "done"

    def test_merged_output_excludes_execution_noise(self, fabric):
        merged = fabric["store"].read_merged(fabric["job_id"])
        assert "simulations" not in merged
        assert "seconds" not in merged


class TestWarmResubmit:
    def test_epoch_bump_completes_with_zero_simulations(self, fabric):
        store = fabric["store"]
        job_id, created = submit_campaign_job(store, campaign_spec(),
                                              samples=SAMPLES,
                                              unit_size=UNIT_SIZE, epoch=1)
        assert created and job_id != fabric["job_id"]
        drain(store, "warm-worker")
        status = job_status(store, job_id)
        assert status["state"] == "done"
        assert status["simulations"] == 0  # everything from the cache
        assert (canonical_json(store.read_merged(job_id))
                == fabric["merged_bytes"])

    def test_identical_resubmit_dedups_onto_existing_job(self, fabric):
        job_id, created = submit_campaign_job(fabric["store"],
                                              campaign_spec(),
                                              samples=SAMPLES,
                                              unit_size=UNIT_SIZE)
        assert job_id == fabric["job_id"] and not created


class TestWorkerCrash:
    def test_sigkill_mid_campaign_loses_nothing(self, tmp_path):
        from repro.resilience.chaos import ChaosPlan

        store = JobStore(tmp_path / "store")
        samples = 12
        job_id, _ = submit_campaign_job(store, campaign_spec(),
                                        samples=samples, unit_size=4)

        # one unit completes normally first, so the crash leaves a mix
        # of done units and an orphaned in-flight claim behind
        opener = ServiceWorker(store, owner="opener")
        first = opener.run_once()
        assert first is not None and "error" not in first

        # the victim process SIGKILLs itself right after claiming the
        # next unit — the claim is left orphaned mid-unit
        plan_dir = tmp_path / "plan"
        ChaosPlan(plan_dir, kills=1)
        proc = multiprocessing.Process(
            target=worker_entry, args=(str(store.root),),
            kwargs={"owner": "victim", "chaos_plan": str(plan_dir),
                    "max_idle": 2.0, "poll": 0.05},
        )
        proc.start()
        proc.join(timeout=120)
        assert proc.exitcode == -9  # SIGKILL fired between claim and run

        counts = store.counts(job_id)
        assert counts["claimed"] == 1  # the orphaned mid-unit claim

        # worker 2 (lease 0 = the victim's lease has expired) steals
        # the orphan and finishes the job
        drain(store, "rescuer")
        status = job_status(store, job_id)
        assert status["state"] == "done"
        counts = store.counts(job_id)
        assert counts["done"] == counts["total"]
        assert counts["pending"] == counts["claimed"] == 0

        # nothing was lost and nothing already completed was recomputed:
        # fleet-wide simulations stayed exactly one per sampled fault
        assert status["simulations"] == samples

        # and the recovered campaign still matches the serial oracle
        merged = canonical_json(store.read_merged(job_id))
        serial = canonical_json(serial_merged_payload(store.load_job(job_id)))
        assert merged == serial


class TestFigureJobs:
    def test_sharded_figure_merge_matches_direct_driver(self, tmp_path):
        from repro.analysis.inst_mix import run_figure5
        from repro.analysis.runner import SuiteRunner

        store = JobStore(tmp_path / "store")
        job_id, _ = submit_figure_job(store, "fig5", scale=0.25, sms=1,
                                      unit_size=4)
        drain(store, "fig-worker")
        status = job_status(store, job_id)
        assert status["state"] == "done"
        merged = store.read_merged(job_id)

        runner = SuiteRunner(experiment_config(num_sms=1), scale=0.25,
                             seed=0)
        direct = run_figure5(runner)
        assert canonical_json(merged["data"]) == canonical_json(direct)
        assert merged["figure"] == "fig5"
        assert "Figure 5" in merged["table"]

    def test_unknown_figure_rejected(self, tmp_path):
        from repro.common.errors import ConfigError

        store = JobStore(tmp_path / "store")
        with pytest.raises(ConfigError):
            submit_figure_job(store, "fig10")  # bypasses the cache
