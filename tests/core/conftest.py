"""Helpers for core-layer tests: synthetic issue events."""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode, op_info
from repro.isa.operands import Reg
from repro.sim.events import IssueEvent


def make_event(opcode: Opcode = Opcode.IADD, warp_id: int = 0,
               dest: int | None = None, cycle: int = 0,
               hw_mask: int | None = None, warp_width: int = 32,
               srcs: tuple | None = None) -> IssueEvent:
    """A synthetic issue event with plausible captured values."""
    info = op_info(opcode)
    if info.writes_reg:
        dst = Reg(dest if dest is not None else 0)
    else:
        dst = None
    inst = Instruction(
        opcode=opcode,
        dst=dst,
        srcs=tuple(Reg(i + 1) for i in range(info.num_srcs)),
    )
    mask = hw_mask if hw_mask is not None else (1 << warp_width) - 1
    event = IssueEvent(
        cycle=cycle, sm_id=0, warp_id=warp_id, pc=0, instruction=inst,
        logical_mask=mask, hw_mask=mask, warp_width=warp_width,
        dest_reg=inst.dest_register(),
    )
    values = srcs or tuple(range(1, info.num_srcs + 1))
    for lane in range(warp_width):
        if (mask >> lane) & 1:
            event.lane_inputs[lane] = values
            event.lane_results[lane] = sum(values) if values else 0
    return event
