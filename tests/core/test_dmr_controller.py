"""Unit tests for the DMR controller facade."""

from repro.common.config import DMRConfig, GPUConfig
from repro.obs.metrics import MetricsRegistry
from repro.core.dmr_controller import DMRController
from repro.isa.opcodes import Opcode

from tests.core.conftest import make_event


def make_controller(dmr=None):
    stats = MetricsRegistry()
    controller = DMRController(
        gpu_config=GPUConfig.small(1),
        dmr_config=dmr or DMRConfig.paper_default(),
        stats=stats,
    )
    return controller, stats


class TestDispatch:
    def test_full_warp_goes_inter(self):
        controller, stats = make_controller()
        controller.on_issue(make_event(Opcode.IADD), None)
        assert stats.value("inter_warp_instructions") == 1
        assert stats.value("intra_warp_instructions") == 0
        assert stats.value("coverage_inter_lanes") == 32

    def test_partial_warp_goes_intra(self):
        controller, stats = make_controller()
        controller.on_issue(make_event(Opcode.IADD, hw_mask=0xFFFF), None)
        assert stats.value("intra_warp_instructions") == 1
        assert stats.value("inter_warp_instructions") == 0

    def test_exempt_opcodes_not_counted(self):
        controller, stats = make_controller()
        controller.on_issue(make_event(Opcode.BAR), None)
        assert stats.value("coverage_eligible_lanes") == 0

    def test_disabled_controller_is_inert(self):
        controller, stats = make_controller(DMRConfig.disabled())
        assert controller.on_issue(make_event(Opcode.IADD), None) == 0
        controller.on_idle(0)
        assert controller.on_kernel_end(10) == 0
        assert stats.value("coverage_eligible_lanes") == 0

    def test_coverage_report(self):
        controller, stats = make_controller()
        controller.on_issue(make_event(Opcode.IADD), None)
        controller.on_issue(
            make_event(Opcode.IMUL, hw_mask=0x0003, cycle=1), None
        )
        report = controller.coverage_report()
        assert report.eligible_lanes == 34
        assert report.inter_verified_lanes == 32
        assert report.intra_verified_lanes == 2

    def test_kernel_end_flushes(self):
        controller, stats = make_controller()
        controller.on_issue(make_event(Opcode.IADD), None)
        flush_cycles = controller.on_kernel_end(100)
        assert flush_cycles == 1  # the pending latch
        assert stats.value("inter_warp_verified_instructions") == 1
