"""Tests for the recovery policy extension (Section 3.1 future work)."""

import pytest

from repro.common.config import DMRConfig, GPUConfig
from repro.core.comparator import DetectionEvent
from repro.core.recovery import (
    RecoveryAction,
    RecoveryPolicy,
    recover_by_reexecution,
)
from repro.faults.injector import FaultInjector
from repro.faults.models import StuckAtFault, TransientFault
from repro.isa.opcodes import Opcode, UnitType
from repro.sim.gpu import GPU
from repro.workloads import get_workload


def event(original=3, verifier=4, cycle=0, sm=0):
    return DetectionEvent(
        cycle=cycle, sm_id=sm, warp_id=0, pc=0, opcode=Opcode.IADD,
        original_lane=original, verifier_lane=verifier,
        original_value=1, verify_value=2, mode="inter",
    )


class TestPolicyClassification:
    def test_no_detections_is_healthy(self):
        plan = RecoveryPolicy().plan([])
        assert plan.healthy
        assert plan.action is RecoveryAction.NONE

    def test_single_mismatch_is_transient(self):
        plan = RecoveryPolicy().plan([event()])
        assert plan.action is RecoveryAction.RESCHEDULE

    def test_repeat_offender_lane_is_permanent(self):
        detections = [
            event(original=5, verifier=6, cycle=c) for c in range(3)
        ] + [event(original=4, verifier=5, cycle=9)]
        plan = RecoveryPolicy(permanent_threshold=4).plan(detections)
        assert plan.action is RecoveryAction.DISABLE_LANE
        assert (0, 5) in plan.disabled_lanes

    def test_smeared_evidence_raises(self):
        # many detections, no common lane
        detections = [
            event(original=2 * i, verifier=2 * i + 1, cycle=i)
            for i in range(8)
        ]
        plan = RecoveryPolicy().plan(detections)
        assert plan.action is RecoveryAction.RAISE_EXCEPTION

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(permanent_threshold=1)

    def test_str_readable(self):
        plan = RecoveryPolicy().plan([event()])
        assert "transient" in str(plan)


class TestEndToEndRecovery:
    def test_transient_recovers_by_reexecution(self):
        """A one-shot strike corrupts run 1; the re-executed run is
        clean and its output checks out — the paper's 're-schedule'
        handling, end to end."""
        workload = get_workload("scan")
        injector = FaultInjector([
            TransientFault(sm_id=0, hw_lane=3, unit=UnitType.SP,
                           bit=2, cycle=30),
        ])

        def gpu_factory():
            return GPU(GPUConfig.small(1), dmr=DMRConfig.paper_default(),
                       fault_hook=injector)

        result, run, plans = recover_by_reexecution(
            gpu_factory, lambda: workload.prepare(scale=0.5),
        )
        assert len(plans) == 2
        assert plans[0].action is RecoveryAction.RESCHEDULE
        assert plans[1].healthy
        run.check(run.memory)  # final output is correct

    def test_permanent_fault_flags_the_lane(self):
        workload = get_workload("scan")
        injector = FaultInjector([
            StuckAtFault(sm_id=0, hw_lane=7, unit=UnitType.SP,
                         bit=2, stuck_to=1),
        ])

        def gpu_factory():
            return GPU(GPUConfig.small(1), dmr=DMRConfig.paper_default(),
                       fault_hook=injector)

        with pytest.raises(RuntimeError) as excinfo:
            recover_by_reexecution(
                gpu_factory, lambda: workload.prepare(scale=0.5),
            )
        assert "disable_lane" in str(excinfo.value)
        assert "lane7" in str(excinfo.value)

    def test_clean_hardware_passes_straight_through(self):
        workload = get_workload("scan")

        def gpu_factory():
            return GPU(GPUConfig.small(1), dmr=DMRConfig.paper_default())

        result, run, plans = recover_by_reexecution(
            gpu_factory, lambda: workload.prepare(scale=0.25),
        )
        assert len(plans) == 1 and plans[0].healthy
