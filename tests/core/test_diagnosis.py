"""Unit + end-to-end tests for faulty-SP localization (Section 3.4)."""

from repro.common.config import DMRConfig, GPUConfig, LaunchConfig
from repro.core.comparator import DetectionEvent
from repro.core.diagnosis import FaultLocalizer
from repro.faults.injector import FaultInjector
from repro.faults.models import StuckAtFault
from repro.isa.opcodes import Opcode, UnitType
from repro.sim.gpu import GPU
from repro.sim.memory import GlobalMemory
from repro.workloads import get_workload

from tests.conftest import build_counting_kernel


def event(sm=0, original=3, verifier=4, opcode=Opcode.IADD, cycle=0):
    return DetectionEvent(
        cycle=cycle, sm_id=sm, warp_id=0, pc=0, opcode=opcode,
        original_lane=original, verifier_lane=verifier,
        original_value=1, verify_value=2, mode="inter",
    )


class TestLocalizerUnit:
    def test_no_evidence(self):
        localizer = FaultLocalizer()
        diagnosis = localizer.diagnose_sm(0)
        assert not diagnosis.localized
        assert diagnosis.evidence == 0

    def test_single_event_is_ambiguous(self):
        localizer = FaultLocalizer()
        localizer.add([event(original=3, verifier=4)])
        diagnosis = localizer.diagnose_sm(0)
        assert not diagnosis.localized  # both partners equally suspect

    def test_varying_partners_localize(self):
        localizer = FaultLocalizer()
        localizer.add([
            event(original=3, verifier=4),
            event(original=3, verifier=5),
            event(original=2, verifier=3),
        ])
        diagnosis = localizer.diagnose_sm(0)
        assert diagnosis.localized
        assert diagnosis.suspect_lane == 3
        assert diagnosis.confidence > 0.5
        assert diagnosis.suspect_unit is UnitType.SP

    def test_sms_diagnosed_independently(self):
        localizer = FaultLocalizer()
        localizer.add([
            event(sm=0, original=1, verifier=2),
            event(sm=0, original=1, verifier=3),
            event(sm=1, original=7, verifier=6),
            event(sm=1, original=7, verifier=4),
        ])
        assert localizer.suspects() == [(0, 1), (1, 7)]

    def test_str_forms(self):
        localizer = FaultLocalizer()
        assert "no unique suspect" in str(localizer.diagnose_sm(0))
        localizer.add([
            event(original=3, verifier=4),
            event(original=3, verifier=5),
        ])
        assert "lane 3" in str(localizer.diagnose_sm(0))


class TestEndToEndLocalization:
    def _detections_for(self, lane, program_grid=(1, 32)):
        fault = StuckAtFault(sm_id=0, hw_lane=lane, unit=UnitType.SP,
                             bit=3, stuck_to=1)
        gpu = GPU(GPUConfig.small(1), dmr=DMRConfig.paper_default(),
                  fault_hook=FaultInjector([fault]))
        grid, block = program_grid
        result = gpu.launch(
            build_counting_kernel(8), LaunchConfig(grid, block),
            memory=GlobalMemory(),
        )
        return result.detections

    def test_stuck_at_lane_localized(self):
        for faulty_lane in (0, 5, 17, 31):
            localizer = FaultLocalizer()
            localizer.add(self._detections_for(faulty_lane))
            diagnosis = localizer.diagnose_sm(0)
            assert diagnosis.localized, faulty_lane
            assert diagnosis.suspect_lane == faulty_lane

    def test_localization_on_real_workload(self):
        workload = get_workload("scan")
        run = workload.prepare(scale=0.5)
        fault = StuckAtFault(sm_id=0, hw_lane=9, unit=UnitType.SP,
                             bit=2, stuck_to=1)
        gpu = GPU(GPUConfig.small(1), dmr=DMRConfig.paper_default(),
                  fault_hook=FaultInjector([fault]))
        result = gpu.launch(run.program, run.launch, memory=run.memory)
        localizer = FaultLocalizer()
        localizer.add(result.detections)
        diagnosis = localizer.diagnose_sm(0)
        assert diagnosis.localized
        assert diagnosis.suspect_lane == 9
