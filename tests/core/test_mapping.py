"""Unit tests for thread-to-core mapping and lane shuffling."""

import pytest

from repro.common.config import MappingPolicy
from repro.common.errors import ConfigError
from repro.core.mapping import (
    cluster_of_lane,
    lane_permutation,
    shuffled_lane,
)


class TestLanePermutation:
    def test_in_order_is_identity(self):
        assert lane_permutation(MappingPolicy.IN_ORDER, 32, 4) == list(range(32))

    def test_cross_is_permutation(self):
        perm = lane_permutation(MappingPolicy.CROSS, 32, 4)
        assert sorted(perm) == list(range(32))

    def test_cross_deals_threads_round_robin(self):
        perm = lane_permutation(MappingPolicy.CROSS, 32, 4)
        # consecutive threads land in consecutive clusters
        for j in range(8):
            assert cluster_of_lane(perm[j], 4) == j

    def test_cross_motivating_case(self):
        """Paper Section 4.2: consecutive active threads (the common
        divergence outcome) starve in-order clusters of checkers but
        spread perfectly under cross mapping."""
        from repro.core.rfu import RegisterForwardingUnit
        rfu = RegisterForwardingUnit(4)
        active_threads = range(8)  # threads 0..7 active, rest idle
        for policy, expect_full in (
            (MappingPolicy.IN_ORDER, False),
            (MappingPolicy.CROSS, True),
        ):
            perm = lane_permutation(policy, 32, 4)
            hw_mask = 0
            for thread in active_threads:
                hw_mask |= 1 << perm[thread]
            verified = rfu.verified_lanes(hw_mask, 32)
            if expect_full:
                assert verified == hw_mask   # all 8 verified
            else:
                assert verified == 0         # two fully-active clusters

    def test_indivisible_cluster_rejected(self):
        with pytest.raises(ConfigError):
            lane_permutation(MappingPolicy.CROSS, 32, 5)


class TestShuffledLane:
    def test_rotates_within_cluster(self):
        assert [shuffled_lane(l, 4) for l in range(4)] == [1, 2, 3, 0]

    def test_never_identity(self):
        for lane in range(32):
            assert shuffled_lane(lane, 4) != lane

    def test_stays_in_cluster(self):
        for lane in range(32):
            assert cluster_of_lane(shuffled_lane(lane, 4), 4) == \
                cluster_of_lane(lane, 4)

    def test_is_bijective(self):
        shuffled = [shuffled_lane(l, 4) for l in range(32)]
        assert sorted(shuffled) == list(range(32))
