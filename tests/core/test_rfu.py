"""Unit tests for the RFU priority MUXes (paper Table 1 / Figure 6)."""

import pytest

from repro.common.errors import ConfigError
from repro.core.rfu import (
    PRIORITY_TABLE,
    RegisterForwardingUnit,
    priority_sequence,
)


class TestTable1:
    """The priority table must match the paper verbatim."""

    def test_exact_table(self):
        assert PRIORITY_TABLE == (
            (0, 1, 2, 3),   # 1st priority per MUX
            (1, 0, 3, 2),   # 2nd
            (2, 3, 0, 1),   # 3rd
            (3, 2, 1, 0),   # 4th
        )

    def test_first_priority_is_own_lane(self):
        for mux in range(4):
            assert priority_sequence(mux, 4)[0] == mux

    def test_each_sequence_is_permutation(self):
        for mux in range(8):
            seq = priority_sequence(mux, 8)
            assert sorted(seq) == list(range(8))

    def test_uniform_pairing_possibilities(self):
        """Every (mux, candidate) pair appears at exactly one priority
        rank — the paper's 'uniform pairing possibilities'."""
        for rank in range(4):
            row = [priority_sequence(m, 4)[rank] for m in range(4)]
            assert sorted(row) == [0, 1, 2, 3]

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigError):
            priority_sequence(0, 3)

    def test_mux_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            priority_sequence(4, 4)


class TestClusterPairing:
    def test_paper_worked_example(self):
        """Active mask 4'b0011: threads 2,3 DMR threads 0,1 (Sec 4.1)."""
        rfu = RegisterForwardingUnit(4)
        assert rfu.pair_cluster(0b0011) == {2: 0, 3: 1}

    def test_single_active_gets_triple_redundancy(self):
        """One active lane is verified by all three idle lanes (the
        paper allows more-than-dual redundancy)."""
        rfu = RegisterForwardingUnit(4)
        pairs = rfu.pair_cluster(0b0001)
        assert pairs == {1: 0, 2: 0, 3: 0}

    def test_fully_active_cluster_pairs_nothing(self):
        assert RegisterForwardingUnit(4).pair_cluster(0b1111) == {}

    def test_empty_cluster_pairs_nothing(self):
        assert RegisterForwardingUnit(4).pair_cluster(0b0000) == {}

    def test_three_active_one_verifier(self):
        rfu = RegisterForwardingUnit(4)
        pairs = rfu.pair_cluster(0b0111)
        # lane 3 scans 2 (idle? no, active) -> verifies lane 2
        assert pairs == {3: 2}

    def test_alternating_mask_full_coverage(self):
        rfu = RegisterForwardingUnit(4)
        pairs = rfu.pair_cluster(0b0101)
        assert set(pairs.values()) == {0, 2}

    def test_verifiers_are_idle_targets_are_active(self):
        rfu = RegisterForwardingUnit(4)
        for mask in range(16):
            for idle, active in rfu.pair_cluster(mask).items():
                assert not (mask >> idle) & 1
                assert (mask >> active) & 1


class TestWarpPairing:
    def test_no_cross_cluster_forwarding(self):
        rfu = RegisterForwardingUnit(4)
        # cluster 0 fully active, cluster 1 fully idle: no pairing at all
        pairs = rfu.pair_warp(0x0F, warp_size=8)
        assert pairs == {}

    def test_pairing_within_each_cluster(self):
        rfu = RegisterForwardingUnit(4)
        # both clusters have pattern 0b0011
        pairs = rfu.pair_warp(0x33, warp_size=8)
        assert pairs == {2: 0, 3: 1, 6: 4, 7: 5}

    def test_verified_lanes_mask(self):
        rfu = RegisterForwardingUnit(4)
        verified = rfu.verified_lanes(0x33, warp_size=8)
        assert verified == 0x33  # every active lane has a checker

    def test_eight_wide_cluster_reaches_farther(self):
        # first 4 lanes active, last 4 idle: a 4-wide cluster config
        # cannot verify them, an 8-wide one can
        mask = 0x0F
        assert RegisterForwardingUnit(4).verified_lanes(mask, 8) == 0
        assert RegisterForwardingUnit(8).verified_lanes(mask, 8) == 0x0F

    def test_warp_size_must_be_cluster_multiple(self):
        with pytest.raises(ConfigError):
            RegisterForwardingUnit(4).pair_warp(0, warp_size=6)

    def test_cluster_size_one_rejected(self):
        with pytest.raises(ConfigError):
            RegisterForwardingUnit(1)
