"""Unit tests for intra-warp DMR and the result comparator."""

from repro.obs.metrics import MetricsRegistry
from repro.core.comparator import ResultComparator
from repro.core.intra_warp import IntraWarpDMR
from repro.isa.opcodes import Opcode

from tests.core.conftest import make_event


def make_engine(cluster=4, functional=False):
    stats = MetricsRegistry()
    comparator = ResultComparator()
    engine = IntraWarpDMR(
        cluster_size=cluster, stats=stats, comparator=comparator,
        functional_verify=functional,
    )
    return engine, stats, comparator


class TestVerifiedCounting:
    def test_half_active_fully_verified(self):
        engine, stats, _ = make_engine()
        # every cluster 0b0011: 16 active, all verified
        mask = 0
        for c in range(8):
            mask |= 0b0011 << (4 * c)
        verified = engine.process(make_event(hw_mask=mask), None)
        assert verified == 16
        assert stats.value("intra_warp_verified_lanes") == 16

    def test_clustered_actives_unverified(self):
        engine, _, _ = make_engine()
        # two fully active clusters, six idle ones: RFU can't reach
        verified = engine.process(make_event(hw_mask=0xFF), None)
        assert verified == 0

    def test_single_active_lane_verified_with_redundancy(self):
        engine, stats, _ = make_engine()
        verified = engine.process(make_event(hw_mask=0b1), None)
        assert verified == 1
        # three idle lanes all re-execute it (more-than-dual is allowed)
        assert stats.value("intra_warp_redundant_executions") == 3

    def test_unverified_lane_count(self):
        engine, _, _ = make_engine()
        event = make_event(hw_mask=0b0111)  # 3 active, 1 idle in cluster 0
        assert engine.unverified_lane_count(event) == 2

    def test_zero_cost(self):
        """Intra-warp DMR must never charge stall cycles — the paper's
        'almost zero overhead' property (Section 3.3)."""
        engine, _, _ = make_engine()
        # the API returns a verified count, not stalls; this documents it
        result = engine.process(make_event(hw_mask=0b0011), None)
        assert isinstance(result, int)


class TestFunctionalVerification:
    def test_clean_execution_no_detections(self):
        from repro.sim.executor import Executor
        from repro.sim.memory import GlobalMemory
        engine, _, comparator = make_engine(functional=True)
        executor = Executor(0, GlobalMemory())
        engine.process(make_event(Opcode.IADD, hw_mask=0b0011), executor)
        assert comparator.detection_count == 0

    def test_corrupted_original_detected(self):
        from repro.sim.executor import Executor
        from repro.sim.memory import GlobalMemory
        engine, _, comparator = make_engine(functional=True)
        executor = Executor(0, GlobalMemory())
        event = make_event(Opcode.IADD, hw_mask=0b0011)
        event.lane_results[0] = 999  # corrupt lane 0's stored result
        engine.process(event, executor)
        assert comparator.detection_count == 1
        detection = comparator.detections[0]
        assert detection.original_lane == 0
        assert detection.mode == "intra"
        assert detection.verifier_lane != detection.original_lane


class TestComparator:
    def test_equal_values_no_event(self):
        comparator = ResultComparator()
        assert comparator.compare(
            0, 0, 0, 0, Opcode.IADD, 0, 1, 5, 5, "intra"
        ) is None
        assert comparator.detection_count == 0

    def test_mismatch_records_event(self):
        comparator = ResultComparator()
        event = comparator.compare(
            3, 1, 2, 7, Opcode.FMUL, 0, 1, 5.0, 6.0, "inter"
        )
        assert event is not None
        assert event.cycle == 3
        assert "inter" in str(event)

    def test_nan_equals_nan(self):
        comparator = ResultComparator()
        nan = float("nan")
        assert comparator.compare(
            0, 0, 0, 0, Opcode.FMUL, 0, 1, nan, nan, "intra"
        ) is None

    def test_float_int_mismatch_detected(self):
        comparator = ResultComparator()
        assert comparator.compare(
            0, 0, 0, 0, Opcode.IADD, 0, 1, 5, 6, "intra"
        ) is not None
