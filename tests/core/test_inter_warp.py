"""Unit tests for the Replay Checker (Algorithm 1, paper Section 4.3)."""

from repro.common.config import DMRConfig
from repro.obs.metrics import MetricsRegistry
from repro.core.comparator import ResultComparator
from repro.core.inter_warp import ReplayChecker
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.operands import Reg

from tests.core.conftest import make_event


def make_checker(replayq=10, lane_shuffle=True, eager=True):
    stats = MetricsRegistry()
    checker = ReplayChecker(
        cluster_size=4,
        dmr_config=DMRConfig(
            replayq_entries=replayq,
            lane_shuffle=lane_shuffle,
            eager_reexecution=eager,
        ),
        stats=stats,
        comparator=ResultComparator(),
    )
    return checker, stats


class TestAlgorithm1Paths:
    def test_different_type_coexecutes_for_free(self):
        checker, stats = make_checker()
        assert checker.accept(make_event(Opcode.IADD, cycle=0), None) == 0
        assert checker.accept(make_event(Opcode.LD_GLOBAL, cycle=1), None) == 0
        assert stats.value("inter_warp_coexec") == 1
        assert stats.value("inter_warp_verified_instructions") == 1
        assert checker.queue_occupancy == 0

    def test_same_type_enqueues(self):
        checker, stats = make_checker()
        checker.accept(make_event(Opcode.IADD, cycle=0), None)
        stall = checker.accept(make_event(Opcode.IMUL, cycle=1), None)
        assert stall == 0
        assert checker.queue_occupancy == 1
        assert stats.value("replayq_enqueues") == 1

    def test_same_type_swaps_with_buffered_different_type(self):
        checker, stats = make_checker()
        # buffer one LDST entry
        checker.accept(make_event(Opcode.LD_GLOBAL, cycle=0), None)
        checker.accept(make_event(Opcode.LD_SHARED, cycle=1), None)
        assert checker.queue_occupancy == 1          # the LD_GLOBAL
        # now an SP pair: pending SP resolves by swapping with the LD
        checker.accept(make_event(Opcode.IADD, cycle=2), None)
        stall = checker.accept(make_event(Opcode.IMUL, cycle=3), None)
        assert stall == 0
        assert stats.value("replayq_swaps") == 1
        # queue now holds the IADD (SP), LD verified
        assert checker.queue_occupancy == 1

    def test_full_queue_same_type_stalls_one_cycle(self):
        checker, stats = make_checker(replayq=0)
        checker.accept(make_event(Opcode.IADD, cycle=0), None)
        stall = checker.accept(make_event(Opcode.IMUL, cycle=1), None)
        assert stall == 1
        assert stats.value("replayq_full_stalls") == 1

    def test_non_eager_reexecution_costs_two_cycles(self):
        checker, _ = make_checker(replayq=0, eager=False)
        checker.accept(make_event(Opcode.IADD, cycle=0), None)
        assert checker.accept(make_event(Opcode.IMUL, cycle=1), None) == 2

    def test_every_accepted_instruction_eventually_verified(self):
        checker, stats = make_checker(replayq=2)
        n = 20
        for i in range(n):
            checker.accept(make_event(Opcode.IADD, cycle=i, dest=i), None)
        checker.flush(n)
        assert stats.value("inter_warp_verified_instructions") == n


class TestIdleDraining:
    def test_idle_cycle_verifies_pending(self):
        checker, stats = make_checker()
        checker.accept(make_event(Opcode.IADD, cycle=0), None)
        checker.on_idle(1)
        assert checker.pending is None
        assert stats.value("inter_warp_verify_coexec_idle") == 1

    def test_idle_cycle_drains_one_entry_per_unit(self):
        checker, stats = make_checker()
        checker.accept(make_event(Opcode.IADD, cycle=0), None)
        checker.accept(make_event(Opcode.IMUL, cycle=1), None)   # IADD queued
        checker.accept(make_event(Opcode.LD_GLOBAL, cycle=2), None)  # IMUL coexec...
        # state: pending LD_GLOBAL, queue has IADD
        checker.on_idle(3)   # verifies pending LD
        assert checker.pending is None
        checker.on_idle(4)   # drains the queued IADD
        assert checker.queue_occupancy == 0

    def test_partial_issue_drains_other_units(self):
        checker, stats = make_checker()
        # queue an SP entry
        checker.accept(make_event(Opcode.IADD, cycle=0), None)
        checker.accept(make_event(Opcode.IMUL, cycle=1), None)
        assert checker.queue_occupancy == 1
        # a partially-utilized LDST issue leaves SP and SFU idle:
        # pending IMUL co-executes (different type), queued IADD cannot
        # drain on the same cycle because the co-execution used SP.
        checker.observe_other_issue(
            make_event(Opcode.LD_GLOBAL, cycle=2, hw_mask=0xF), None
        )
        assert checker.queue_occupancy == 1
        # next partial LDST issue: nothing pending, SP idle -> drains
        checker.observe_other_issue(
            make_event(Opcode.LD_SHARED, cycle=3, hw_mask=0xF), None
        )
        assert checker.queue_occupancy == 0


class TestRAWOnUnverified:
    def _consumer(self, reg):
        return Instruction(
            opcode=Opcode.IADD, dst=Reg(9), srcs=(Reg(reg), Reg(8))
        )

    def test_consumer_of_buffered_result_stalls(self):
        checker, stats = make_checker()
        checker.accept(make_event(Opcode.IADD, cycle=0, dest=5), None)
        checker.accept(make_event(Opcode.IMUL, cycle=1, dest=6), None)
        # IADD (writes r5) is now buffered unverified
        assert checker.check_raw(0, self._consumer(5)) == 1
        assert stats.value("inter_warp_verify_raw_forced") == 1
        # a second consumer is free: producer already verified
        assert checker.check_raw(0, self._consumer(5)) == 0

    def test_other_warp_not_stalled(self):
        checker, _ = make_checker()
        checker.accept(make_event(Opcode.IADD, cycle=0, dest=5, warp_id=1), None)
        checker.accept(make_event(Opcode.IMUL, cycle=1, dest=6, warp_id=1), None)
        assert checker.check_raw(2, self._consumer(5)) == 0

    def test_unrelated_register_not_stalled(self):
        checker, _ = make_checker()
        checker.accept(make_event(Opcode.IADD, cycle=0, dest=5), None)
        checker.accept(make_event(Opcode.IMUL, cycle=1, dest=6), None)
        assert checker.check_raw(0, self._consumer(7)) == 0


class TestFlush:
    def test_flush_costs_one_cycle_per_entry(self):
        checker, _ = make_checker()
        for i, op in enumerate((Opcode.IADD, Opcode.IMUL, Opcode.ISUB)):
            checker.accept(make_event(op, cycle=i, dest=i), None)
        # pending ISUB + 2 queued
        assert checker.flush(10) == 3
        assert checker.queue_occupancy == 0
        assert checker.pending is None

    def test_flush_empty_is_free(self):
        checker, _ = make_checker()
        assert checker.flush(0) == 0
