"""Unit tests for coverage accounting (paper Section 3.3)."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.core.coverage import (
    COVERAGE_EXEMPT,
    CoverageReport,
    is_coverable,
    theoretical_intra_warp_coverage,
)
from repro.isa.opcodes import Opcode


class TestTheoreticalCoverage:
    def test_full_coverage_at_or_below_half(self):
        for active in range(1, 17):
            assert theoretical_intra_warp_coverage(active, 32) == 1.0

    def test_paper_formula_above_half(self):
        # coverage = inactive / active
        assert theoretical_intra_warp_coverage(24, 32) == 8 / 24
        assert theoretical_intra_warp_coverage(31, 32) == 1 / 31

    def test_fully_active_warp_has_zero_intra_coverage(self):
        assert theoretical_intra_warp_coverage(32, 32) == 0.0

    def test_monotonically_decreasing_above_half(self):
        values = [
            theoretical_intra_warp_coverage(a, 32) for a in range(16, 33)
        ]
        assert values == sorted(values, reverse=True)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            theoretical_intra_warp_coverage(0, 32)
        with pytest.raises(ValueError):
            theoretical_intra_warp_coverage(33, 32)


class TestCoverableOpcodes:
    def test_exempt_set(self):
        assert COVERAGE_EXEMPT == {
            Opcode.NOP, Opcode.BAR, Opcode.EXIT, Opcode.JMP
        }

    def test_computation_is_coverable(self):
        for op in (Opcode.IADD, Opcode.FFMA, Opcode.LD_GLOBAL,
                   Opcode.SIN, Opcode.SETP, Opcode.BRA):
            assert is_coverable(op)

    def test_bookkeeping_is_not(self):
        for op in COVERAGE_EXEMPT:
            assert not is_coverable(op)


class TestCoverageReport:
    def test_from_stats(self):
        stats = MetricsRegistry()
        stats.inc("coverage_eligible_lanes", 200)
        stats.inc("coverage_verified_lanes", 150)
        stats.inc("coverage_intra_lanes", 50)
        stats.inc("coverage_inter_lanes", 100)
        report = CoverageReport.from_stats(stats)
        assert report.coverage == 0.75
        assert report.coverage_percent == 75.0
        assert report.intra_verified_lanes == 50

    def test_empty_run_is_fully_covered(self):
        report = CoverageReport.from_stats(MetricsRegistry())
        assert report.coverage == 1.0

    def test_str_mentions_percentage(self):
        stats = MetricsRegistry()
        stats.inc("coverage_eligible_lanes", 4)
        stats.inc("coverage_verified_lanes", 3)
        assert "75.00%" in str(CoverageReport.from_stats(stats))
