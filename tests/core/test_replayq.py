"""Unit tests for the ReplayQ structure and Section 4.3.1 geometry."""

import pytest

from repro.common.errors import ConfigError
from repro.core.replayq import ReplayQ, ReplayQGeometry
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode, UnitType
from repro.isa.operands import Reg
from repro.sim.events import IssueEvent


def make_event(opcode=Opcode.IADD, warp_id=0, dest=None):
    from repro.isa.opcodes import op_info
    info = op_info(opcode)
    inst = Instruction(
        opcode=opcode,
        dst=Reg(dest) if dest is not None and info.writes_reg else (
            Reg(0) if info.writes_reg else None),
        srcs=tuple(Reg(i + 1) for i in range(info.num_srcs)),
    )
    return IssueEvent(
        cycle=0, sm_id=0, warp_id=warp_id, pc=0, instruction=inst,
        logical_mask=0xFFFFFFFF, hw_mask=0xFFFFFFFF, warp_width=32,
        dest_reg=inst.dest_register(),
    )


class TestGeometry:
    """Paper Section 4.3.1: 514-516 B per entry, ~5 KB for 10 entries."""

    def test_source_bytes(self):
        assert ReplayQGeometry().source_bytes == 384

    def test_result_bytes(self):
        assert ReplayQGeometry().result_bytes_total == 128

    def test_entry_byte_range(self):
        geometry = ReplayQGeometry()
        assert geometry.entry_bytes_min == 514
        assert geometry.entry_bytes_max == 516

    def test_ten_entries_about_5kb(self):
        total = ReplayQGeometry().total_bytes_max
        assert 5000 <= total <= 5300

    def test_four_percent_of_register_file(self):
        fraction = ReplayQGeometry().fraction_of_register_file(128 * 1024)
        assert 0.035 <= fraction <= 0.045


class TestQueue:
    def test_capacity_zero_always_full(self):
        q = ReplayQ(0)
        assert q.is_full and q.is_empty

    def test_enqueue_dequeue_fifo(self):
        q = ReplayQ(4)
        events = [make_event(warp_id=i) for i in range(3)]
        for i, e in enumerate(events):
            q.enqueue(e, cycle=i)
        assert len(q) == 3
        assert q.dequeue_oldest().warp_id == 0
        assert q.dequeue_oldest().warp_id == 1

    def test_enqueue_full_rejected(self):
        q = ReplayQ(1)
        q.enqueue(make_event(), 0)
        with pytest.raises(ConfigError):
            q.enqueue(make_event(), 1)

    def test_dequeue_different_type(self):
        q = ReplayQ(4)
        q.enqueue(make_event(Opcode.IADD), 0)
        q.enqueue(make_event(Opcode.LD_GLOBAL), 1)
        entry = q.dequeue_different_type(UnitType.SP)
        assert entry.unit is UnitType.LDST
        assert len(q) == 1

    def test_dequeue_different_type_none_available(self):
        q = ReplayQ(4)
        q.enqueue(make_event(Opcode.IADD), 0)
        assert q.dequeue_different_type(UnitType.SP) is None
        assert len(q) == 1

    def test_dequeue_of_type(self):
        q = ReplayQ(4)
        q.enqueue(make_event(Opcode.LD_GLOBAL), 0)
        q.enqueue(make_event(Opcode.SIN), 1)
        assert q.dequeue_of_type(UnitType.SFU).unit is UnitType.SFU
        assert q.dequeue_of_type(UnitType.SFU) is None

    def test_find_producer_newest_wins(self):
        q = ReplayQ(4)
        first = q.enqueue(make_event(dest=5, warp_id=1), 0)
        second = q.enqueue(make_event(dest=5, warp_id=1), 1)
        assert q.find_producer(1, 5) is second
        assert q.find_producer(2, 5) is None
        assert q.find_producer(1, 6) is None

    def test_remove_specific_entry(self):
        q = ReplayQ(4)
        entry = q.enqueue(make_event(), 0)
        assert q.remove(entry)
        assert not q.remove(entry)

    def test_drain_empties(self):
        q = ReplayQ(4)
        q.enqueue(make_event(), 0)
        q.enqueue(make_event(), 1)
        drained = q.drain()
        assert len(drained) == 2
        assert q.is_empty

    def test_peak_occupancy(self):
        q = ReplayQ(4)
        q.enqueue(make_event(), 0)
        q.enqueue(make_event(), 1)
        q.dequeue_oldest()
        q.enqueue(make_event(), 2)
        assert q.peak_occupancy == 2

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigError):
            ReplayQ(-1)
