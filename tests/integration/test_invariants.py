"""Cross-cutting accounting invariants, checked over real suite runs.

These are the bookkeeping identities the experiment figures rest on;
if any drifts, every figure silently degrades, so they get their own
tests on live simulations.
"""

import pytest

from repro.analysis.runner import SuiteRunner, experiment_config
from repro.common.config import DMRConfig
from repro.workloads import PAPER_ORDER


@pytest.fixture(scope="module")
def runner():
    return SuiteRunner(experiment_config(num_sms=2), scale=0.5)


@pytest.fixture(scope="module")
def dmr_results(runner):
    return {
        name: runner.run(name, DMRConfig.paper_default())
        for name in PAPER_ORDER
    }


class TestCycleAccounting:
    def test_cycles_partition(self, dmr_results):
        """Every SM cycle is an issue, an idle, or a DMR stall."""
        for name, result in dmr_results.items():
            stats = result.stats
            total = stats.value("cycles_total")
            issue_cycles = (stats.value("instructions_issued")
                            - stats.value("dual_issue_cycles"))
            accounted = (issue_cycles
                         + stats.value("cycles_idle")
                         + stats.value("cycles_dmr_stall"))
            assert accounted == total, name

    def test_kernel_cycles_is_max_of_sms(self, dmr_results):
        for name, result in dmr_results.items():
            assert result.cycles == max(result.per_sm_cycles), name


class TestStallAttribution:
    """Each stall cycle carries exactly one cause label.

    The umbrella ``cycles_dmr_stall`` must equal the sum of the
    per-cause counters, and the full-partition identity must hold with
    the causes substituted for the umbrella — the double-attribution
    regression (a flush charged to both the umbrella and a second
    counter) breaks these exact identities immediately.
    """

    @staticmethod
    def _causes(stats):
        return {name: value for name, value in stats.counters().items()
                if name.startswith("cycles_stall_")}

    def test_causes_partition_umbrella(self, dmr_results):
        for name, result in dmr_results.items():
            causes = self._causes(result.stats)
            assert (sum(causes.values())
                    == result.stats.value("cycles_dmr_stall")), name

    def test_total_partitions_by_cause(self, dmr_results):
        for name, result in dmr_results.items():
            stats = result.stats
            issue_cycles = (stats.value("instructions_issued")
                            - stats.value("dual_issue_cycles"))
            accounted = (issue_cycles + stats.value("cycles_idle")
                         + sum(self._causes(stats).values()))
            assert accounted == stats.value("cycles_total"), name

    def test_flush_is_not_double_booked(self, dmr_results):
        for name, result in dmr_results.items():
            counters = result.stats.counters()
            assert "replayq_flush_cycles" not in counters, name


class TestCoverageAccounting:
    def test_verified_never_exceeds_eligible(self, dmr_results):
        for name, result in dmr_results.items():
            report = result.coverage
            assert report.verified_lanes <= report.eligible_lanes, name

    def test_intra_plus_inter_equals_verified(self, dmr_results):
        for name, result in dmr_results.items():
            report = result.coverage
            assert (report.intra_verified_lanes
                    + report.inter_verified_lanes
                    == report.verified_lanes), name

    def test_every_fully_utilized_instruction_verified(self, dmr_results):
        """Inter-warp DMR's completeness: each accepted instruction is
        verified on exactly one path (co-execution, queue swap, idle
        drain, eager re-execution, RAW-forced, or kernel-end flush) —
        never zero, never twice."""
        paths = ("coexec", "coexec_from_queue", "eager", "coexec_idle",
                 "drain_idle", "raw_forced", "flush")
        for name, result in dmr_results.items():
            stats = result.stats
            accepted = stats.value("inter_warp_instructions")
            by_path = sum(
                stats.value(f"inter_warp_verify_{path}") for path in paths
            )
            assert by_path == accepted, name
            assert stats.value(
                "inter_warp_verified_instructions"
            ) == accepted, name


class TestHistogramConsistency:
    def test_active_thread_histogram_totals_issues(self, dmr_results):
        for name, result in dmr_results.items():
            histogram = result.stats.histogram("active_threads")
            assert histogram.total == result.instructions_issued, name

    def test_unit_histogram_totals_issues(self, dmr_results):
        for name, result in dmr_results.items():
            histogram = result.stats.histogram("unit_type")
            assert histogram.total == result.instructions_issued, name

    def test_thread_instructions_equals_weighted_histogram(self, dmr_results):
        for name, result in dmr_results.items():
            histogram = result.stats.histogram("active_threads")
            weighted = sum(k * n for k, n in histogram.as_dict().items())
            assert weighted == result.stats.value("thread_instructions"), name


class TestDMRIsPureObserver:
    def test_issue_counts_match_baseline(self, runner, dmr_results):
        """DMR adds stall cycles but never changes the instruction
        stream itself."""
        for name in PAPER_ORDER:
            base = runner.baseline(name)
            dmr = dmr_results[name]
            assert (base.instructions_issued
                    == dmr.instructions_issued), name

    def test_dmr_never_faster_than_free(self, runner, dmr_results):
        for name in PAPER_ORDER:
            base = runner.baseline(name)
            dmr = dmr_results[name]
            # scheduling perturbation can save a handful of cycles, but
            # never a significant fraction
            assert dmr.cycles >= base.cycles * 0.97, name
