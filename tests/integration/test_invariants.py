"""Cross-cutting accounting invariants, checked over real suite runs.

These are the bookkeeping identities the experiment figures rest on;
if any drifts, every figure silently degrades, so they get their own
tests on live simulations.
"""

import pytest

from repro.analysis.runner import SuiteRunner, experiment_config
from repro.common.config import DMRConfig
from repro.workloads import PAPER_ORDER


@pytest.fixture(scope="module")
def runner():
    return SuiteRunner(experiment_config(num_sms=2), scale=0.5)


@pytest.fixture(scope="module")
def dmr_results(runner):
    return {
        name: runner.run(name, DMRConfig.paper_default())
        for name in PAPER_ORDER
    }


class TestCycleAccounting:
    def test_cycles_partition(self, dmr_results):
        """Every SM cycle is an issue, an idle, or a DMR stall."""
        for name, result in dmr_results.items():
            stats = result.stats
            total = stats.value("cycles_total")
            issue_cycles = (stats.value("instructions_issued")
                            - stats.value("dual_issue_cycles"))
            accounted = (issue_cycles
                         + stats.value("cycles_idle")
                         + stats.value("cycles_dmr_stall"))
            assert accounted == total, name

    def test_kernel_cycles_is_max_of_sms(self, dmr_results):
        for name, result in dmr_results.items():
            assert result.cycles == max(result.per_sm_cycles), name


class TestCoverageAccounting:
    def test_verified_never_exceeds_eligible(self, dmr_results):
        for name, result in dmr_results.items():
            report = result.coverage
            assert report.verified_lanes <= report.eligible_lanes, name

    def test_intra_plus_inter_equals_verified(self, dmr_results):
        for name, result in dmr_results.items():
            report = result.coverage
            assert (report.intra_verified_lanes
                    + report.inter_verified_lanes
                    == report.verified_lanes), name

    def test_every_fully_utilized_instruction_verified(self, dmr_results):
        """Inter-warp DMR's completeness: each accepted instruction is
        verified on exactly one path (co-execution, queue swap, idle
        drain, eager re-execution, RAW-forced, or kernel-end flush) —
        never zero, never twice."""
        paths = ("coexec", "coexec_from_queue", "eager", "coexec_idle",
                 "drain_idle", "raw_forced", "flush")
        for name, result in dmr_results.items():
            stats = result.stats
            accepted = stats.value("inter_warp_instructions")
            by_path = sum(
                stats.value(f"inter_warp_verify_{path}") for path in paths
            )
            assert by_path == accepted, name
            assert stats.value(
                "inter_warp_verified_instructions"
            ) == accepted, name


class TestHistogramConsistency:
    def test_active_thread_histogram_totals_issues(self, dmr_results):
        for name, result in dmr_results.items():
            histogram = result.stats.histogram("active_threads")
            assert histogram.total == result.instructions_issued, name

    def test_unit_histogram_totals_issues(self, dmr_results):
        for name, result in dmr_results.items():
            histogram = result.stats.histogram("unit_type")
            assert histogram.total == result.instructions_issued, name

    def test_thread_instructions_equals_weighted_histogram(self, dmr_results):
        for name, result in dmr_results.items():
            histogram = result.stats.histogram("active_threads")
            weighted = sum(k * n for k, n in histogram.as_dict().items())
            assert weighted == result.stats.value("thread_instructions"), name


class TestDMRIsPureObserver:
    def test_issue_counts_match_baseline(self, runner, dmr_results):
        """DMR adds stall cycles but never changes the instruction
        stream itself."""
        for name in PAPER_ORDER:
            base = runner.baseline(name)
            dmr = dmr_results[name]
            assert (base.instructions_issued
                    == dmr.instructions_issued), name

    def test_dmr_never_faster_than_free(self, runner, dmr_results):
        for name in PAPER_ORDER:
            base = runner.baseline(name)
            dmr = dmr_results[name]
            # scheduling perturbation can save a handful of cycles, but
            # never a significant fraction
            assert dmr.cycles >= base.cycles * 0.97, name
