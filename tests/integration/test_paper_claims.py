"""Integration tests asserting the paper's *shape* claims.

Absolute numbers differ from the paper (different substrate, reduced
scale — see EXPERIMENTS.md), but the qualitative results the paper's
argument rests on must reproduce.  These run the full 11-workload suite
at evaluation scale, so this file is the slow end of the test suite.
"""

import statistics

import pytest

from repro.analysis.active_threads import run_figure1
from repro.analysis.coverage_sweep import run_figure9a
from repro.analysis.inst_mix import run_figure5
from repro.analysis.overhead_sweep import run_figure9b
from repro.analysis.power_energy import run_figure11
from repro.analysis.raw_distance import run_figure8b
from repro.analysis.runner import SuiteRunner, experiment_config
from repro.analysis.switching import run_figure8a
from repro.common.config import DMRConfig
from repro.workloads import PAPER_ORDER


@pytest.fixture(scope="module")
def runner():
    return SuiteRunner(experiment_config(num_sms=2), scale=1.0)


class TestFigure1Claims:
    def test_bfs_dominated_by_single_digit_active_threads(self, runner):
        """'over 40% of BFS instructions are executed by only a single
        thread' — our BFS must at least be dominated by the low bins."""
        bins = run_figure1(runner)["bfs"]
        assert bins["1"] + bins["2-11"] > 0.4

    def test_majority_of_apps_not_always_full(self, runner):
        data = run_figure1(runner)
        not_full = [name for name in PAPER_ORDER if data[name]["32"] < 0.99]
        assert len(not_full) >= 6

    def test_dense_apps_fully_utilized(self, runner):
        data = run_figure1(runner)
        for name in ("matrixmul", "libor"):
            assert data[name]["32"] > 0.9, name


class TestFigure5Claims:
    def test_no_app_is_single_typed(self, runner):
        """Heterogeneous underutilization exists everywhere: no workload
        issues only one unit type."""
        for name, mix in run_figure5(runner).items():
            used = [unit for unit, frac in mix.items() if frac > 0.01]
            assert len(used) >= 2, name

    def test_sp_dominates_overall(self, runner):
        mixes = run_figure5(runner)
        sp_mean = statistics.mean(mix["SP"] for mix in mixes.values())
        assert sp_mean > 0.5


class TestFigure8Claims:
    def test_typical_runs_fit_the_replayq(self, runner):
        """Fig 8(a): most same-type runs are short; the mean should be
        well under the 10-entry ReplayQ for the majority of workloads."""
        data = run_figure8a(runner)
        means = []
        for name, per_unit in data.items():
            for unit, stats in per_unit.items():
                if stats["max"] > 0:
                    means.append(stats["mean"])
        assert statistics.median(means) <= 10

    def test_raw_distances_give_slack(self, runner):
        """Fig 8(b): RAW distances of at least ~8 cycles, median far
        beyond the 1-2 cycle verification latency."""
        data = run_figure8b(runner)
        for name, stats in data.items():
            assert stats["min"] >= 4, name
            assert stats["median"] >= 8, name


class TestFigure9aClaims:
    @pytest.fixture(scope="class")
    def coverage(self, runner):
        return run_figure9a(runner)

    def test_average_coverage_high(self, coverage):
        """Headline: high measured coverage (paper: 96.43%)."""
        assert coverage["average"]["cluster4_cross"] > 85

    def test_bigger_clusters_help(self, coverage):
        avg = coverage["average"]
        assert avg["cluster8_inorder"] >= avg["cluster4_inorder"]

    def test_fully_utilized_apps_fully_covered(self, coverage):
        for name in ("matrixmul", "sha", "libor"):
            assert coverage[name]["cluster4_cross"] > 99, name

    def test_bfs_nearly_fully_covered(self, coverage):
        assert coverage["bfs"]["cluster4_cross"] > 95

    def test_cross_mapping_helps_tid_guarded_kernels(self, coverage):
        """Consecutive-active divergence (scan's tid>=offset guard) is
        exactly where cross mapping wins (paper Section 4.2)."""
        for name in ("scan", "radixsort"):
            assert coverage[name]["cluster4_cross"] > \
                coverage[name]["cluster4_inorder"], name


class TestFigure9bClaims:
    @pytest.fixture(scope="class")
    def overhead(self, runner):
        return run_figure9b(runner)

    def test_replayq_reduces_average_overhead(self, overhead):
        avg = overhead["average"]
        assert avg[10] < avg[0]

    def test_average_overhead_moderate_with_10_entries(self, overhead):
        """Paper headline: worst-case ~16% average overhead."""
        assert overhead["average"][10] < 1.25

    def test_matrixmul_worst_and_improves_most(self, overhead):
        """Paper: MatrixMul >70% overhead with no ReplayQ, ~18% with 10."""
        matmul = overhead["matrixmul"]
        assert matmul[0] > 1.5
        assert matmul[10] < matmul[0] - 0.25

    def test_divergent_apps_nearly_free(self, overhead):
        """BFS-style intra-warp-covered apps pay ~nothing (paper)."""
        for name in ("bfs", "nqueen", "mum"):
            assert overhead[name][10] < 1.1, name


class TestFigure11Claims:
    def test_power_and_energy_ratios(self, runner):
        data = run_figure11(runner)
        assert 1.0 < data["average"]["power"] < 1.3
        assert 1.0 < data["average"]["energy"] < 1.5
        # energy ratio >= power ratio: DMR also lengthens execution
        assert data["average"]["energy"] >= data["average"]["power"] * 0.98


class TestHeadlineCoverageOverheadTradeoff:
    def test_the_paper_sentence(self, runner):
        """'Warped-DMR achieves high error coverage while incurring a
        modest performance overhead without extra execution units.'"""
        coverage = run_figure9a(runner)["average"]["cluster4_cross"]
        overhead = run_figure9b(runner)["average"][10]
        assert coverage > 85.0
        assert overhead < 1.25


class TestMappingGainClaim:
    def test_cross_mapping_increases_detection_opportunity(self, runner):
        """Section 4.2: the scheduler change raises intra-warp
        verification on divergence patterns with consecutive active
        threads.  Measured on the suite's intra-covered lanes."""
        from repro.common.config import MappingPolicy
        gains = []
        for name in ("scan", "radixsort", "bitonic"):
            inorder = runner.run(
                name,
                DMRConfig.paper_default().with_mapping(MappingPolicy.IN_ORDER),
            ).coverage.intra_verified_lanes
            cross = runner.run(
                name,
                DMRConfig.paper_default().with_mapping(MappingPolicy.CROSS),
            ).coverage.intra_verified_lanes
            gains.append(cross / max(1, inorder))
        assert statistics.mean(gains) > 1.0
