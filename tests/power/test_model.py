"""Unit tests for the analytical power model."""

import pytest

from repro.common.config import DMRConfig, GPUConfig
from repro.common.errors import ConfigError
from repro.power.model import PowerModel
from repro.power.params import PowerParams
from repro.workloads import get_workload
from repro.sim.gpu import GPU


@pytest.fixture(scope="module")
def scan_runs():
    workload = get_workload("scan")
    config = GPUConfig.small(2)
    base_run = workload.prepare(scale=0.5)
    base = GPU(config, dmr=DMRConfig.disabled()).launch(
        base_run.program, base_run.launch, memory=base_run.memory
    )
    dmr_run = workload.prepare(scale=0.5)
    dmr = GPU(config, dmr=DMRConfig.paper_default()).launch(
        dmr_run.program, dmr_run.launch, memory=dmr_run.memory
    )
    return config, base, dmr


class TestPowerModel:
    def test_report_structure(self, scan_runs):
        config, base, _ = scan_runs
        report = PowerModel(config).report(base)
        assert report.total_power_w > report.runtime_power_w > 0
        assert set(report.component_power_w) == {
            "SP", "SFU", "LDST", "RF", "FDS", "ReplayQ"
        }

    def test_access_rates_bounded(self, scan_runs):
        config, base, _ = scan_runs
        report = PowerModel(config).report(base)
        params = PowerParams()
        assert report.component_power_w["SP"] <= params.max_power_sp
        assert report.component_power_w["RF"] <= params.max_power_regfile

    def test_baseline_has_no_replayq_power(self, scan_runs):
        config, base, _ = scan_runs
        report = PowerModel(config).report(base)
        assert report.component_power_w["ReplayQ"] == 0.0

    def test_dmr_consumes_more_power_and_energy(self, scan_runs):
        config, base, dmr = scan_runs
        model = PowerModel(config)
        ratios = model.report(dmr).normalized_to(model.report(base))
        assert 1.0 < ratios["power"] < 1.5
        assert ratios["energy"] >= ratios["power"] * 0.95

    def test_energy_is_power_times_time(self, scan_runs):
        config, base, _ = scan_runs
        report = PowerModel(config).report(base)
        time_s = base.cycles * config.clock_period_ns * 1e-9
        assert report.energy_j == pytest.approx(
            report.total_power_w * time_s
        )

    def test_static_share_realistic_at_paper_scale(self):
        """Static power should be roughly 60% of a typical total on the
        paper's 30-SM chip (Section 3.4)."""
        params = PowerParams()
        static = params.static_per_sm * 30 + params.static_chip
        # a typical runtime estimate: ~half-active units on 30 SMs
        per_sm_dynamic = (
            0.5 * (params.max_power_sp + params.max_power_ldst
                   + params.max_power_regfile + params.max_power_fds)
            + params.constant_per_sm
        )
        total = static + 30 * per_sm_dynamic
        assert 0.4 <= static / total <= 0.75

    def test_negative_params_rejected(self):
        with pytest.raises(ConfigError):
            PowerParams(max_power_sp=-1.0)
