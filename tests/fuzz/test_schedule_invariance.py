"""Schedule-space exploration: result invariance, timing variance.

The seeded scheduler makes interleavings enumerable; these tests pin
down what may and may not depend on the choice of interleaving:

* Functional results may NOT.  Corpus kernels are race-free by
  construction, so their final memory must be bit-identical across
  schedule seeds — convergent kernels especially (the ISSUE's
  invariance contract), but divergent ones too.
* Timing MAY — and for divergent multi-warp kernels under a tight
  ReplayQ it must: if no schedule seed ever changed the ReplayQ stall
  profile, the explorer knob would not actually reach the scheduler.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.common.config import DMRConfig
from repro.fuzz import Corpus, run_kernel
from repro.fuzz.differential import result_digest

CORPUS_DIR = Path(__file__).parent / "corpus"

_corpus = Corpus(CORPUS_DIR)
with open(CORPUS_DIR / "GOLDEN.json", "r", encoding="utf-8") as _handle:
    GOLDEN = json.load(_handle)

SCHEDULE_SEEDS = tuple(range(8))
_convergent = [d for d in _corpus.digests() if not GOLDEN[d]["divergent"]]
_divergent = [d for d in _corpus.digests() if GOLDEN[d]["divergent"]]


@pytest.mark.parametrize("digest", _convergent[:4],
                         ids=[d[:12] for d in _convergent[:4]])
def test_convergent_kernels_schedule_invariant(digest):
    """Identical final architectural state across 8 schedule seeds."""
    kernel = _corpus.load(digest)
    dmr = DMRConfig.paper_default()
    digests = {result_digest(run_kernel(kernel, dmr=dmr, schedule_seed=s))
               for s in SCHEDULE_SEEDS}
    assert digests == {GOLDEN[digest]["result"]}


def test_divergent_kernels_schedule_invariant_results_too():
    """Race freedom makes even divergent kernels result-invariant."""
    digest = _divergent[0]
    kernel = _corpus.load(digest)
    digests = {result_digest(run_kernel(kernel, schedule_seed=s))
               for s in SCHEDULE_SEEDS}
    assert digests == {GOLDEN[digest]["result"]}


def test_divergent_kernel_shows_schedule_dependent_replay_stalls():
    """The explorer knob must actually steer the interleaving.

    Under a 2-entry ReplayQ, at least one of the first few divergent
    multi-warp kernels must stall differently under different schedule
    seeds; all-identical profiles would mean the seed never reached
    the scheduler's pick.
    """
    dmr = DMRConfig.paper_default().with_replayq(2)
    for digest in _divergent[:4]:
        kernel = _corpus.load(digest)
        stalls = [
            run_kernel(kernel, dmr=dmr,
                       schedule_seed=s).stats.value("cycles_stall_replay")
            for s in SCHEDULE_SEEDS
        ]
        if len(set(stalls)) > 1:
            return
    pytest.fail("no divergent kernel showed schedule-dependent "
                "ReplayQ stalls across 8 seeds")


def test_seeded_runs_are_reproducible():
    """Same seed, same kernel -> identical cycles and stall profile."""
    digest = _divergent[0]
    kernel = _corpus.load(digest)
    dmr = DMRConfig.paper_default().with_replayq(2)
    first = run_kernel(kernel, dmr=dmr, schedule_seed=3)
    second = run_kernel(kernel, dmr=dmr, schedule_seed=3)
    assert first.cycles == second.cycles
    assert first.stats.value("cycles_stall_replay") == \
        second.stats.value("cycles_stall_replay")
    assert result_digest(first) == result_digest(second)
