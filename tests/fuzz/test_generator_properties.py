"""Property tests: generator invariants over the seed space.

Hypothesis drives ``generate_kernel`` across arbitrary seeds and checks
the contracts everything downstream leans on: structural
well-formedness (valid operands come free from ``Instruction``
validation, so the checks here are the ones the type system can't
enforce — terminator, top-level unpredicated barriers, register
budget), byte-identical regeneration, payload round-tripping, and —
for a smaller sample, since it simulates — termination within the
declared cycle budget with all four executions bit-identical.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.fuzz import (FuzzKernel, generate_kernel, validate_kernel)
from repro.fuzz.profile import PRESETS
from repro.isa.opcodes import Opcode

SEEDS = st.integers(min_value=0, max_value=2 ** 32 - 1)


def _barrier_pcs(program):
    return [pc for pc, inst in enumerate(program.instructions)
            if inst.opcode is Opcode.BAR]


class TestWellFormedness:
    @given(seed=SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_structure(self, seed):
        kernel = generate_kernel(seed)
        program = kernel.program
        instructions = program.instructions
        # Terminates the instruction stream properly.
        assert instructions[-1].opcode is Opcode.EXIT
        # Launch geometry is positive and warp-aligned enough to run.
        assert kernel.grid_dim >= 1
        assert 1 <= kernel.block_dim <= 64
        assert kernel.cycle_budget > 0
        # The register budget the profile promised is respected.
        assert program.num_registers <= 14
        assert program.num_predicates <= 2

    @given(seed=SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_barriers_are_top_level_and_unpredicated(self, seed):
        """Every thread must reach every barrier exactly once.

        Structurally: no BAR is predicated, and no BAR sits inside any
        branch's span — neither a loop body (backward branch) nor a
        diamond shadow (forward branch) — so barrier arrival can never
        depend on a divergent path.
        """
        kernel = generate_kernel(seed)
        instructions = kernel.program.instructions
        barriers = _barrier_pcs(kernel.program)
        for pc in barriers:
            assert instructions[pc].pred is None
        for pc, inst in enumerate(instructions):
            if inst.opcode is not Opcode.BRA:
                continue
            lo, hi = sorted((pc, inst.target))
            for bar_pc in barriers:
                assert not (lo < bar_pc < hi), (
                    f"seed {seed}: BAR at {bar_pc} inside branch "
                    f"{pc}->{inst.target}")

    @given(seed=SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_stores_hit_only_own_output_slots(self, seed):
        """Race freedom: global stores address gtid + output-slot base."""
        from repro.fuzz.generator import IN_STRIDE, OUT_BASE
        kernel = generate_kernel(seed)
        gtid_reg = kernel.program.instructions[0].dst
        for inst in kernel.program.instructions:
            if inst.opcode is Opcode.ST_GLOBAL:
                assert inst.srcs[0] == gtid_reg
                assert inst.offset >= OUT_BASE
                assert (inst.offset - OUT_BASE) % IN_STRIDE == 0
            elif inst.opcode is Opcode.LD_GLOBAL:
                assert inst.srcs[0] == gtid_reg
                assert 0 <= inst.offset < OUT_BASE


class TestDeterminism:
    @given(seed=SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_regeneration_is_byte_identical(self, seed):
        first = generate_kernel(seed)
        second = generate_kernel(seed)
        assert first.canonical_bytes() == second.canonical_bytes()
        assert first.digest() == second.digest()

    @given(seed=SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_payload_round_trip_preserves_digest(self, seed):
        kernel = generate_kernel(seed)
        clone = FuzzKernel.from_payload(kernel.to_payload())
        assert clone.canonical_bytes() == kernel.canonical_bytes()
        assert clone.digest() == kernel.digest()
        # Labels are builder-side cosmetics and not serialized, so the
        # round trip preserves instructions/reconvergence, not names.
        assert len(clone.program.instructions) == \
            len(kernel.program.instructions)
        assert clone.program.reconvergence == kernel.program.reconvergence

    @given(seed=SEEDS, name=st.sampled_from(sorted(PRESETS)))
    @settings(max_examples=20, deadline=None)
    def test_explicit_profile_is_deterministic_too(self, seed, name):
        profile = PRESETS[name]
        first = generate_kernel(seed, profile)
        second = generate_kernel(seed, profile)
        assert first.canonical_bytes() == second.canonical_bytes()
        assert first.profile_name == name


class TestExecution:
    @given(seed=SEEDS)
    @settings(max_examples=12, deadline=None)
    def test_validates_within_declared_budget(self, seed):
        """Terminates under its own cycle budget, bit-identical 4 ways.

        ``validate_kernel`` simulates with ``max_cycles`` set to the
        kernel's declared budget, so a budget overrun surfaces as a
        SimulationError in the outcome — no separate timeout needed.
        """
        kernel = generate_kernel(seed, PRESETS["tiny"])
        outcome = validate_kernel(kernel)
        assert outcome.ok, (seed, outcome.errors)
        for engine in ("scalar", "vector", "mega"):
            assert outcome.engine_digests[engine] == outcome.reference_digest
