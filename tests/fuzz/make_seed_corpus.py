"""Regenerate the checked-in seed corpus and its golden digests.

Run from the repo root after any intentional change to the generator
or the serialization format::

    PYTHONPATH=src python tests/fuzz/make_seed_corpus.py

Writes 64 kernels to ``tests/fuzz/corpus/`` (cycling the convergent /
divergent / memory / mixed seed-profile families at test-friendly
sizes) and ``tests/fuzz/corpus/GOLDEN.json`` mapping each kernel digest
to the scalar reference's result-memory digest.  The differential tests
replay these exact files, so regenerating them re-baselines the suite —
commit the diff deliberately.
"""

from __future__ import annotations

import json
import shutil
import sys
from pathlib import Path

from repro.fuzz import (Corpus, corpus_digest, generate_kernel, kernel_seed,
                        memory_digest, reference_memory, seed_corpus_profile,
                        validate_kernel)

CORPUS_DIR = Path(__file__).parent / "corpus"
GOLDEN_PATH = CORPUS_DIR / "GOLDEN.json"
CAMPAIGN_SEED = 0xC0FFEE
COUNT = 64


def main() -> int:
    if CORPUS_DIR.exists():
        shutil.rmtree(CORPUS_DIR)
    corpus = Corpus(CORPUS_DIR)
    golden = {}
    failures = 0
    for index in range(COUNT):
        kernel = generate_kernel(kernel_seed(CAMPAIGN_SEED, index),
                                 seed_corpus_profile(index))
        outcome = validate_kernel(kernel)
        if not outcome.ok:
            print(f"kernel {index} (seed {kernel.seed:#x}) failed "
                  f"validation: {outcome.errors}", file=sys.stderr)
            failures += 1
            continue
        digest, _ = corpus.add(kernel)
        golden[digest] = {
            "result": memory_digest(reference_memory(kernel)),
            "divergent": kernel.divergent,
            "seed": kernel.seed,
            "profile": kernel.profile_name,
            "features": sorted(kernel.features),
        }
    with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
        json.dump(golden, handle, indent=2, sort_keys=True)
        handle.write("\n")
    divergent = sum(entry["divergent"] for entry in golden.values())
    print(f"wrote {len(golden)} kernels ({divergent} divergent) to "
          f"{CORPUS_DIR}")
    print(f"corpus digest: {corpus_digest(corpus)}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
