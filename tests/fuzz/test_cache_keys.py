"""Cache keys must separate schedule seeds everywhere results persist.

Three caches can hold schedule-dependent payloads: the suite runner's
result cache (covered in tests/analysis/test_runner_cache.py), the
fault-campaign run cache, and the fig-sched sweep cache.  Each key is
built from ``config_fingerprint``, which expands every GPUConfig field
— these tests pin that ``schedule_seed`` actually reaches all of them,
and that the fuzz-sweep key separates kernels and DMR configs too.
"""

from __future__ import annotations

from repro.analysis.sched_sweep import sched_run_key
from repro.common.config import DMRConfig, GPUConfig
from repro.faults.campaign import CampaignSpec, fault_run_key
from repro.faults.models import TransientFault
from repro.fuzz.differential import fuzz_gpu_config
from repro.isa.opcodes import UnitType


def _fault():
    return TransientFault(sm_id=0, hw_lane=3, unit=UnitType.SP,
                          bit=7, cycle=100)


def _spec(schedule_seed=None):
    return CampaignSpec(
        workload="scan",
        config=GPUConfig.small(2).with_schedule_seed(schedule_seed),
        dmr=DMRConfig.paper_default(),
    )


class TestFaultRunKey:
    def test_schedule_seed_separates_campaign_runs(self):
        fault = _fault()
        keys = {fault_run_key(_spec(seed), fault)
                for seed in (None, 0, 1, 5)}
        assert len(keys) == 4

    def test_same_schedule_seed_same_key(self):
        fault = _fault()
        assert fault_run_key(_spec(3), fault) == \
            fault_run_key(_spec(3), fault)


class TestSchedSweepKey:
    def test_schedule_seed_separates_sweep_runs(self):
        dmr = DMRConfig.paper_default()
        keys = {
            sched_run_key("deadbeef" * 8,
                          fuzz_gpu_config(schedule_seed=seed), dmr)
            for seed in (None, 0, 1, 7)
        }
        assert len(keys) == 4

    def test_kernel_digest_reaches_the_key(self):
        config = fuzz_gpu_config(schedule_seed=0)
        dmr = DMRConfig.paper_default()
        assert sched_run_key("a" * 64, config, dmr) != \
            sched_run_key("b" * 64, config, dmr)

    def test_dmr_config_reaches_the_key(self):
        config = fuzz_gpu_config(schedule_seed=0)
        assert sched_run_key("a" * 64, config,
                             DMRConfig.paper_default()) != \
            sched_run_key("a" * 64, config,
                          DMRConfig.paper_default().with_replayq(2))
