"""Differential sweep over the checked-in seed corpus.

The 64 kernels in ``tests/fuzz/corpus/`` are frozen, content-addressed
scenarios with golden result digests (``GOLDEN.json``, produced by
``make_seed_corpus.py``).  Every kernel's scalar reference must
reproduce its golden digest, and both simulator engines must reproduce
it under DMR — detection must never alter functional results.

Running the full {off, intra, inter} x {ReplayQ 2, unbounded} x
{scalar, vector, mega} cross product on all 64 kernels would cost 1152
simulations, so each kernel is assigned one (mode, size) cell
round-robin by corpus index — every cell is exercised by >= 10 kernels
and all three engines run for every kernel, at 1/6 the cost.  The
DMR-off cell doubles as the plain engine-equivalence check.

(Under DMR the mega engine's region fusion is gated off at launch, so
its DMR cells certify the gating path stays bit-identical too.)
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.overhead_sweep import UNBOUNDED_REPLAYQ
from repro.common.config import DMRConfig, MappingPolicy
from repro.fuzz import Corpus, memory_digest, reference_memory, run_kernel
from repro.fuzz.differential import result_digest

CORPUS_DIR = Path(__file__).parent / "corpus"
GOLDEN_PATH = CORPUS_DIR / "GOLDEN.json"

_corpus = Corpus(CORPUS_DIR)
_digests = _corpus.digests()
with open(GOLDEN_PATH, "r", encoding="utf-8") as _handle:
    GOLDEN = json.load(_handle)

#: the DMR-mode axis: off, intra-warp-flavored (in-order mapping, no
#: shuffle), inter-warp-flavored (paper default: cross mapping + lane
#: shuffle maximizing ReplayQ traffic)
MODES = {
    "off": None,
    "intra": DMRConfig(enabled=True, mapping=MappingPolicy.IN_ORDER,
                       lane_shuffle=False),
    "inter": DMRConfig.paper_default(),
}
SIZES = (2, UNBOUNDED_REPLAYQ)


def _cell(index: int):
    """Round-robin (mode, replayq) assignment for corpus kernel *index*."""
    mode = ("off", "intra", "inter")[index % 3]
    size = SIZES[(index // 3) % 2]
    if mode == "off":
        return DMRConfig.disabled(), f"{mode}"
    return MODES[mode].with_replayq(size), f"{mode}/q{size}"


def test_corpus_is_complete():
    assert len(_digests) == 64
    assert set(_digests) == set(GOLDEN)
    divergent = sum(GOLDEN[d]["divergent"] for d in _digests)
    # Both schedule-test populations must exist.
    assert 16 <= divergent <= 48


def test_reference_reproduces_every_golden_digest():
    """The pure-Python oracle replays all 64 golden results exactly."""
    for digest in _digests:
        kernel = _corpus.load(digest)
        assert memory_digest(reference_memory(kernel)) == \
            GOLDEN[digest]["result"], digest


@pytest.mark.parametrize("index,digest", list(enumerate(_digests)),
                         ids=[d[:12] for d in _digests])
def test_engines_bit_identical_under_dmr(index, digest):
    kernel = _corpus.load(digest)
    dmr, label = _cell(index)
    for engine in ("scalar", "vector", "mega"):
        result = run_kernel(kernel, dmr=dmr, engine=engine)
        assert result_digest(result) == GOLDEN[digest]["result"], (
            f"{digest[:12]} under {label} engine={engine}")
        # A fault-free run must never report a detection.
        assert not result.detections, (digest, label, engine)
