"""Scalar reference interpreter for differential testing.

Executes a :class:`~repro.kernel.program.Program` one thread at a time,
each thread following its own control flow with no SIMT stack, no
masks, and no timing — the semantics a warp-based execution must match
exactly.  Arithmetic goes through the same :func:`compute_lane` pure
ALU as the simulator, so any divergence between the two executions is a
control-flow/masking bug, not a semantics difference.
"""

from __future__ import annotations

from typing import Dict, List

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.operands import Imm, Reg, SReg, SpecialReg
from repro.sim.executor import compute_lane


class ScalarThread:
    """One thread's architectural state."""

    def __init__(self, tid: int, block_id: int, block_dim: int,
                 grid_dim: int, num_regs: int, num_preds: int) -> None:
        self.tid = tid
        self.block_id = block_id
        self.block_dim = block_dim
        self.grid_dim = grid_dim
        self.regs: List[object] = [0] * num_regs
        self.preds: List[bool] = [False] * num_preds

    @property
    def gtid(self) -> int:
        return self.block_id * self.block_dim + self.tid

    def operand(self, op) -> object:
        if isinstance(op, Reg):
            return self.regs[op.idx]
        if isinstance(op, Imm):
            return op.value
        if isinstance(op, SReg):
            return {
                SpecialReg.TID: self.tid,
                SpecialReg.NTID: self.block_dim,
                SpecialReg.CTAID: self.block_id,
                SpecialReg.NCTAID: self.grid_dim,
                SpecialReg.GTID: self.gtid,
                SpecialReg.LANEID: self.tid % 32,
            }[op.kind]
        raise TypeError(f"unknown operand {op!r}")


def run_scalar_thread(program, thread: ScalarThread,
                      global_memory: Dict[int, object],
                      shared_memory: Dict[int, object],
                      max_steps: int = 100_000) -> None:
    """Run one thread to EXIT, mutating the memories in place.

    Barriers are no-ops (callers must only use programs whose shared
    data flow is per-thread-private for differential runs).
    """
    pc = 0
    steps = 0
    while True:
        steps += 1
        assert steps < max_steps, "scalar reference did not terminate"
        inst: Instruction = program[pc]
        op = inst.opcode

        if op is Opcode.EXIT:
            return
        if op is Opcode.BAR or op is Opcode.NOP:
            pc += 1
            continue
        if op is Opcode.JMP:
            pc = int(inst.target)
            continue
        if op is Opcode.BRA:
            condition = thread.preds[inst.pred] != inst.pred_neg
            pc = int(inst.target) if condition else pc + 1
            continue

        # guarded execution
        if inst.pred is not None and thread.preds[inst.pred] == inst.pred_neg:
            pc += 1
            continue

        if op is Opcode.SETP:
            inputs = tuple(thread.operand(s) for s in inst.srcs)
            thread.preds[inst.pdst] = bool(compute_lane(inst, inputs))
        elif op is Opcode.SELP:
            inputs = tuple(thread.operand(s) for s in inst.srcs)
            inputs = inputs + (thread.preds[inst.psrc],)
            thread.regs[inst.dst.idx] = compute_lane(inst, inputs)
        elif inst.info.is_load:
            addr = compute_lane(inst, (thread.operand(inst.srcs[0]),))
            memory = (global_memory if op is Opcode.LD_GLOBAL
                      else shared_memory)
            thread.regs[inst.dst.idx] = memory.get(addr, 0)
        elif inst.info.is_store:
            inputs = tuple(thread.operand(s) for s in inst.srcs)
            addr = compute_lane(inst, inputs)
            memory = (global_memory if op is Opcode.ST_GLOBAL
                      else shared_memory)
            memory[addr] = inputs[1]
        else:
            inputs = tuple(thread.operand(s) for s in inst.srcs)
            result = compute_lane(inst, inputs)
            if inst.dst is not None:
                thread.regs[inst.dst.idx] = result
        pc += 1


def run_scalar_block(program, block_id: int, block_dim: int,
                     grid_dim: int,
                     global_memory: Dict[int, object]) -> None:
    """Run every thread of one block sequentially."""
    shared: Dict[int, object] = {}
    for tid in range(block_dim):
        thread = ScalarThread(
            tid=tid, block_id=block_id, block_dim=block_dim,
            grid_dim=grid_dim,
            num_regs=max(1, program.num_registers),
            num_preds=max(1, program.num_predicates),
        )
        run_scalar_thread(program, thread, global_memory, shared)
