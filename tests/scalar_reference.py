"""Compatibility shim: the scalar reference now lives in the package.

The fuzzer (:mod:`repro.fuzz`) needs the reference interpreter as its
differential oracle, so the implementation moved to
:mod:`repro.sim.scalar_ref`; existing tests keep importing from here.
"""

from repro.sim.scalar_ref import (  # noqa: F401
    ScalarThread,
    run_scalar_block,
    run_scalar_thread,
    scalar_thread_steps,
)
