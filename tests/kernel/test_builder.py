"""Unit tests for the kernel builder DSL."""

import pytest

from repro.common.errors import KernelError
from repro.isa.opcodes import CmpOp, Opcode, UnitType
from repro.isa.operands import Imm, Reg
from repro.kernel.builder import KernelBuilder


class TestRegisterAllocation:
    def test_fresh_registers_distinct(self):
        b = KernelBuilder("k")
        regs = b.regs(5)
        assert len({r.idx for r in regs}) == 5

    def test_predicates_distinct(self):
        b = KernelBuilder("k")
        assert b.pred() != b.pred()

    def test_pc_tracks_emission(self):
        b = KernelBuilder("k")
        assert b.pc == 0
        b.nop()
        assert b.pc == 1


class TestEmission:
    def test_immediate_coercion(self):
        b = KernelBuilder("k")
        r = b.reg()
        inst = b.iadd(r, r, 7)
        assert inst.srcs[1] == Imm(7)

    def test_all_alu_helpers_emit_their_opcode(self):
        b = KernelBuilder("k")
        r = b.reg()
        cases = [
            (b.mov, (r, 1), Opcode.MOV),
            (b.iadd, (r, r, 1), Opcode.IADD),
            (b.isub, (r, r, 1), Opcode.ISUB),
            (b.imul, (r, r, 2), Opcode.IMUL),
            (b.imad, (r, r, 2, 1), Opcode.IMAD),
            (b.idiv, (r, r, 2), Opcode.IDIV),
            (b.irem, (r, r, 2), Opcode.IREM),
            (b.imin, (r, r, 2), Opcode.IMIN),
            (b.imax, (r, r, 2), Opcode.IMAX),
            (b.and_, (r, r, 1), Opcode.AND),
            (b.or_, (r, r, 1), Opcode.OR),
            (b.xor, (r, r, 1), Opcode.XOR),
            (b.not_, (r, r), Opcode.NOT),
            (b.shl, (r, r, 1), Opcode.SHL),
            (b.shr, (r, r, 1), Opcode.SHR),
            (b.fadd, (r, r, 1.0), Opcode.FADD),
            (b.fsub, (r, r, 1.0), Opcode.FSUB),
            (b.fmul, (r, r, 2.0), Opcode.FMUL),
            (b.ffma, (r, r, 2.0, 1.0), Opcode.FFMA),
            (b.fmin, (r, r, 0.0), Opcode.FMIN),
            (b.fmax, (r, r, 0.0), Opcode.FMAX),
            (b.fabs, (r, r), Opcode.FABS),
            (b.fneg, (r, r), Opcode.FNEG),
            (b.i2f, (r, r), Opcode.I2F),
            (b.f2i, (r, r), Opcode.F2I),
            (b.sin, (r, r), Opcode.SIN),
            (b.cos, (r, r), Opcode.COS),
            (b.sqrt, (r, r), Opcode.SQRT),
            (b.rsqrt, (r, r), Opcode.RSQRT),
            (b.exp, (r, r), Opcode.EXP),
            (b.log, (r, r), Opcode.LOG),
        ]
        for helper, args, opcode in cases:
            assert helper(*args).opcode is opcode

    def test_memory_helpers(self):
        b = KernelBuilder("k")
        r, a = b.regs(2)
        assert b.ld_global(r, a, offset=4).offset == 4
        assert b.st_shared(a, r).opcode is Opcode.ST_SHARED

    def test_special_register_helpers(self):
        b = KernelBuilder("k")
        r = b.reg()
        for helper in (b.tid, b.gtid, b.ctaid, b.ntid):
            assert helper(r).opcode is Opcode.MOV

    def test_guard_predicate_passthrough(self):
        b = KernelBuilder("k")
        r = b.reg()
        p = b.pred()
        inst = b.iadd(r, r, 1, pred=p, pred_neg=True)
        assert inst.pred == p and inst.pred_neg


class TestBuild:
    def test_forward_label_resolution(self):
        b = KernelBuilder("k")
        p = b.pred()
        r = b.reg()
        b.mov(r, 0)
        b.setp(p, r, CmpOp.EQ, 0)
        b.bra("end", pred=p)
        b.nop()
        b.label("end")
        b.exit()
        program = b.build()
        assert program.instructions[2].target == 4

    def test_build_is_repeatable(self):
        b = KernelBuilder("k")
        b.nop()
        b.exit()
        assert b.build().instructions == b.build().instructions

    def test_program_metadata(self):
        b = KernelBuilder("meta")
        r0, r1 = b.regs(2)
        p = b.pred()
        b.gtid(r0)
        b.setp(p, r0, CmpOp.LT, 4)
        b.selp(r1, 1, 2, p)
        b.sin(r1, r1)
        b.st_global(r0, r1)
        b.exit()
        program = b.build()
        assert program.name == "meta"
        assert program.num_registers == 2
        assert program.num_predicates == 1
        mix = program.unit_mix()
        assert mix[UnitType.SFU] == 1
        assert mix[UnitType.LDST] == 1

    def test_disassemble_includes_labels(self):
        b = KernelBuilder("k")
        b.label("start")
        b.nop()
        b.exit()
        assert "start:" in b.build().disassemble()

    def test_empty_program_rejected(self):
        with pytest.raises(KernelError):
            KernelBuilder("k").build()
