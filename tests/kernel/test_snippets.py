"""Tests for the reusable kernel snippets."""

import pytest

from repro.common.errors import KernelError
from repro.isa.opcodes import CmpOp
from repro.kernel.builder import KernelBuilder
from repro.kernel.snippets import (
    emit_clamp,
    emit_iabs,
    emit_pred_and,
    emit_pred_or,
    emit_range_check,
    emit_rotl,
)

from tests.conftest import run_program


def run_unary(emit, inputs, tiny_config):
    """Run a snippet as out[gtid] = f(in[gtid]) and return outputs."""
    b = KernelBuilder("snippet")
    gid, v, t1, t2 = b.regs(4)
    b.gtid(gid)
    b.ld_global(v, gid)
    emit(b, v, t1, t2)
    b.st_global(gid, v, offset=len(inputs))
    b.exit()
    program = b.build()
    from repro.sim.memory import GlobalMemory
    memory = GlobalMemory()
    memory.write_block(0, inputs)
    run_program(program, tiny_config, block=len(inputs), memory=memory)
    return memory.read_block(len(inputs), len(inputs))


class TestRotl:
    def test_matches_python(self, tiny_config):
        inputs = [1, 0x80000000 - (1 << 32) + 2**31, 0x12345678, -1]
        inputs = [v if v < 2**31 else v - 2**32 for v in inputs]
        out = run_unary(
            lambda b, v, t1, t2: emit_rotl(b, v, v, 5, t1, t2),
            inputs, tiny_config,
        )
        for got, value in zip(out, inputs):
            u = value & 0xFFFFFFFF
            expected = ((u << 5) | (u >> 27)) & 0xFFFFFFFF
            expected = expected - (1 << 32) if expected >= 2**31 else expected
            assert got == expected

    def test_amount_validation(self):
        b = KernelBuilder("bad")
        r1, r2, r3 = b.regs(3)
        with pytest.raises(KernelError):
            emit_rotl(b, r1, r1, 0, r2, r3)
        with pytest.raises(KernelError):
            emit_rotl(b, r1, r1, 32, r2, r3)


class TestIabsAndClamp:
    def test_iabs(self, tiny_config):
        inputs = [-5, 0, 7, -(1 << 30)]
        out = run_unary(
            lambda b, v, t1, t2: emit_iabs(b, v, v, t1),
            inputs, tiny_config,
        )
        assert out == [5, 0, 7, 1 << 30]

    def test_clamp(self, tiny_config):
        inputs = [-10, 0, 5, 99]
        out = run_unary(
            lambda b, v, t1, t2: emit_clamp(b, v, v, 0, 9),
            inputs, tiny_config,
        )
        assert out == [0, 0, 5, 9]

    def test_clamp_validation(self):
        b = KernelBuilder("bad")
        r = b.reg()
        with pytest.raises(KernelError):
            emit_clamp(b, r, r, 9, 0)


class TestPredicateLogic:
    def _run_logic(self, emit_op, tiny_config):
        # out = (gid >= 8) OP (gid < 24), encoded as 1/0
        b = KernelBuilder("logic")
        gid, out, t1, t2 = b.regs(4)
        pa, pb, pr = b.pred(), b.pred(), b.pred()
        b.gtid(gid)
        b.setp(pa, gid, CmpOp.GE, 8)
        b.setp(pb, gid, CmpOp.LT, 24)
        emit_op(b, pr, pa, pb, t1, t2)
        b.selp(out, 1, 0, pr)
        b.st_global(gid, out)
        b.exit()
        _, memory = run_program(b.build(), tiny_config, block=32)
        return [memory.load(g) for g in range(32)]

    def test_and(self, tiny_config):
        out = self._run_logic(emit_pred_and, tiny_config)
        for g in range(32):
            assert out[g] == (1 if 8 <= g < 24 else 0)

    def test_or(self, tiny_config):
        out = self._run_logic(emit_pred_or, tiny_config)
        for g in range(32):
            assert out[g] == (1 if (g >= 8 or g < 24) else 0)

    def test_range_check(self, tiny_config):
        b = KernelBuilder("range")
        gid, out, t1, t2 = b.regs(4)
        pr, ps = b.pred(), b.pred()
        b.gtid(gid)
        emit_range_check(b, pr, gid, 5, 20, t1, t2, ps)
        b.selp(out, 1, 0, pr)
        b.st_global(gid, out)
        b.exit()
        _, memory = run_program(b.build(), tiny_config, block=32)
        for g in range(32):
            assert memory.load(g) == (1 if 5 <= g < 20 else 0)
