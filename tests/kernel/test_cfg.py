"""Unit tests for CFG construction and reconvergence analysis."""

import pytest

from repro.common.errors import KernelError
from repro.isa.opcodes import CmpOp
from repro.kernel.builder import KernelBuilder
from repro.kernel.cfg import (
    EXIT_NODE,
    ControlFlowGraph,
    compute_reconvergence_table,
)


def build_if_else():
    b = KernelBuilder("ifelse")
    r = b.reg()
    p = b.pred()
    b.gtid(r)
    b.setp(p, r, CmpOp.LT, 16)          # pc 1
    b.bra("then", pred=p)               # pc 2
    b.iadd(r, r, 1)                     # pc 3 (else)
    b.jmp("join")                       # pc 4
    b.label("then")
    b.iadd(r, r, 2)                     # pc 5
    b.label("join")
    b.st_global(r, r)                   # pc 6
    b.exit()                            # pc 7
    return b.build()


def build_loop():
    b = KernelBuilder("loop")
    i = b.reg()
    p = b.pred()
    b.mov(i, 0)                         # pc 0
    b.label("top")
    b.iadd(i, i, 1)                     # pc 1
    b.setp(p, i, CmpOp.LT, 4)           # pc 2
    b.bra("top", pred=p)                # pc 3
    b.exit()                            # pc 4
    return b.build()


class TestReconvergence:
    def test_if_else_reconverges_at_join(self):
        program = build_if_else()
        assert program.reconvergence[2] == 6

    def test_loop_backedge_reconverges_at_fallthrough(self):
        program = build_loop()
        assert program.reconvergence[3] == 4

    def test_branch_around_exit_reconverges_at_exit_node(self):
        b = KernelBuilder("split")
        r = b.reg()
        p = b.pred()
        b.gtid(r)
        b.setp(p, r, CmpOp.LT, 1)
        b.bra("other", pred=p)          # pc 2
        b.st_global(r, r)
        b.exit()
        b.label("other")
        b.st_global(r, 0)
        b.exit()
        program = b.build()
        assert program.reconvergence[2] == EXIT_NODE

    def test_nested_if(self):
        b = KernelBuilder("nested")
        r = b.reg()
        p, q = b.pred(), b.pred()
        b.gtid(r)
        b.setp(p, r, CmpOp.LT, 16)
        b.bra("outer_join", pred=p, neg=True)   # pc 2
        b.setp(q, r, CmpOp.LT, 8)
        b.bra("inner_join", pred=q, neg=True)   # pc 4
        b.iadd(r, r, 1)
        b.label("inner_join")
        b.iadd(r, r, 2)
        b.label("outer_join")
        b.exit()
        program = b.build()
        inner = program.labels["inner_join"]
        outer = program.labels["outer_join"]
        assert program.reconvergence[4] == inner
        assert program.reconvergence[2] == outer


class TestValidation:
    def test_fallthrough_past_end_rejected(self):
        b = KernelBuilder("bad")
        r = b.reg()
        b.mov(r, 1)  # no exit
        with pytest.raises(KernelError):
            b.build()

    def test_unresolved_label_rejected(self):
        b = KernelBuilder("bad")
        b.jmp("nowhere")
        with pytest.raises(KernelError):
            b.build()

    def test_duplicate_label_rejected(self):
        b = KernelBuilder("bad")
        b.label("x")
        with pytest.raises(KernelError):
            b.label("x")


class TestCFGStructure:
    def test_every_instruction_reachable(self):
        cfg = ControlFlowGraph(build_if_else().instructions)
        assert cfg.reachable_from_entry()

    def test_all_paths_exit(self):
        cfg = ControlFlowGraph(build_loop().instructions)
        assert cfg.all_paths_exit()

    def test_conditional_branch_pcs(self):
        cfg = ControlFlowGraph(build_if_else().instructions)
        assert cfg.conditional_branch_pcs() == [2]

    def test_reconvergence_of_straightline_is_empty(self):
        b = KernelBuilder("line")
        r = b.reg()
        b.mov(r, 1)
        b.exit()
        assert compute_reconvergence_table(b.build().instructions) == {}
