"""Unit tests for the Program container."""

import pytest

from repro.common.errors import KernelError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import CmpOp, Opcode, UnitType
from repro.isa.operands import Reg
from repro.kernel.builder import KernelBuilder
from repro.kernel.program import Program


def small_program():
    b = KernelBuilder("small")
    r0, r1 = b.regs(2)
    p = b.pred()
    b.gtid(r0)
    b.setp(p, r0, CmpOp.LT, 4)
    b.sin(r1, r0)
    b.st_global(r0, r1)
    b.exit()
    return b.build()


class TestProgramValidation:
    def test_unresolved_target_rejected(self):
        with pytest.raises(KernelError):
            Program(
                name="bad",
                instructions=(
                    Instruction(opcode=Opcode.JMP, target="label"),
                ),
            )

    def test_must_end_with_exit_or_jmp(self):
        with pytest.raises(KernelError):
            Program(
                name="bad",
                instructions=(
                    Instruction(opcode=Opcode.MOV, dst=Reg(0),
                                srcs=(Reg(1),)),
                ),
            )

    def test_empty_rejected(self):
        with pytest.raises(KernelError):
            Program(name="empty", instructions=())

    def test_jmp_ending_allowed(self):
        program = Program(
            name="spin-free",
            instructions=(
                Instruction(opcode=Opcode.EXIT),
                Instruction(opcode=Opcode.JMP, target=0),
            ),
        )
        assert len(program) == 2


class TestProgramAccessors:
    def test_len_and_indexing(self):
        program = small_program()
        assert len(program) == 5
        assert program[0].opcode is Opcode.MOV

    def test_register_and_predicate_footprint(self):
        program = small_program()
        assert program.num_registers == 2
        assert program.num_predicates == 1

    def test_unit_mix_counts(self):
        mix = small_program().unit_mix()
        assert mix[UnitType.SFU] == 1
        assert mix[UnitType.LDST] == 1
        assert mix[UnitType.SP] == 3  # mov, setp, exit

    def test_from_instructions_computes_reconvergence(self):
        b = KernelBuilder("div")
        r = b.reg()
        p = b.pred()
        b.gtid(r)
        b.setp(p, r, CmpOp.LT, 4)
        b.bra("end", pred=p)
        b.nop()
        b.label("end")
        b.exit()
        built = b.build()
        rebuilt = Program.from_instructions("div2", built.instructions)
        assert dict(rebuilt.reconvergence) == dict(built.reconvergence)

    def test_disassemble_one_line_per_instruction(self):
        program = small_program()
        body_lines = [
            line for line in program.disassemble().splitlines()
            if not line.endswith(":")
        ]
        assert len(body_lines) == len(program)
