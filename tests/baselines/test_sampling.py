"""Tests for the Sampling-DMR comparator (related work [15])."""

import pytest

from repro.baselines.sampling import SamplingDMRController, sampling_factory
from repro.common.config import DMRConfig, GPUConfig, LaunchConfig
from repro.common.errors import ConfigError
from repro.obs.metrics import MetricsRegistry
from repro.faults.injector import FaultInjector
from repro.faults.models import StuckAtFault, TransientFault
from repro.isa.opcodes import UnitType
from repro.sim.gpu import GPU
from repro.sim.memory import GlobalMemory

from tests.conftest import build_counting_kernel


def launch(epoch=64, sample=16, fault=None, iterations=16, config=None):
    config = config or GPUConfig.small(1)
    injector = FaultInjector([fault]) if fault else None
    gpu = GPU(config, fault_hook=injector)
    memory = GlobalMemory()
    result = gpu.launch(
        build_counting_kernel(iterations), LaunchConfig(4, 64),
        memory=memory,
        controller_factory=sampling_factory(
            config, epoch_cycles=epoch, sample_cycles=sample,
            functional_verify=fault is not None,
        ),
    )
    return result, memory


class TestConfiguration:
    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigError):
            SamplingDMRController(
                GPUConfig.small(1), DMRConfig.paper_default(), MetricsRegistry(),
                epoch_cycles=100, sample_cycles=0,
            )
        with pytest.raises(ConfigError):
            SamplingDMRController(
                GPUConfig.small(1), DMRConfig.paper_default(), MetricsRegistry(),
                epoch_cycles=10, sample_cycles=20,
            )


class TestCoverageTradeoff:
    def test_partial_coverage_between_zero_and_full(self):
        result, _ = launch(epoch=64, sample=16)
        coverage = result.coverage.coverage
        assert 0.05 < coverage < 0.9
        assert result.stats.value("sampling_skipped_issues") > 0
        assert result.stats.value("sampling_window_issues") > 0

    def test_full_window_equals_warped_dmr_coverage(self):
        sampled, _ = launch(epoch=64, sample=64)
        config = GPUConfig.small(1)
        gpu = GPU(config, dmr=DMRConfig.paper_default())
        full = gpu.launch(
            build_counting_kernel(16), LaunchConfig(4, 64),
            memory=GlobalMemory(),
        )
        assert sampled.coverage.coverage == pytest.approx(
            full.coverage.coverage, abs=0.02
        )

    def test_wider_window_means_more_coverage(self):
        narrow, _ = launch(epoch=128, sample=8)
        wide, _ = launch(epoch=128, sample=64)
        assert wide.coverage.coverage > narrow.coverage.coverage

    def test_functional_results_unaffected(self):
        _, memory = launch()
        for g in range(4 * 64):
            assert memory.load(g) == 16 * g


class TestDetectionSemantics:
    def test_permanent_fault_eventually_detected(self):
        """The scheme's selling point: stuck-at faults persist, so some
        sampled window eventually sees them."""
        fault = StuckAtFault(sm_id=0, hw_lane=2, unit=UnitType.SP,
                             bit=3, stuck_to=1)
        result, _ = launch(epoch=64, sample=16, fault=fault)
        assert len(result.detections) > 0

    def test_transient_outside_window_missed(self):
        """...and its weakness: a strike between windows is gone before
        anyone re-executes (the paper's argument for Warped-DMR)."""
        # window covers cycles [0, 16) of each 4096-cycle epoch; strike
        # at cycle 2000 of a ~2000-cycle kernel run
        fault = TransientFault(sm_id=0, hw_lane=2, unit=UnitType.SP,
                               bit=3, cycle=1000)
        result, _ = launch(epoch=4096, sample=16, fault=fault)
        assert len(result.detections) == 0
