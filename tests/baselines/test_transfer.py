"""Unit tests for the transfer model."""

import pytest

from repro.baselines.transfer import TransferModel
from repro.common.config import TransferConfig
from repro.workloads.base import TransferSpec


class TestTransferModel:
    def test_single_copy(self):
        model = TransferModel(TransferConfig(
            bandwidth_bytes_per_s=1e9, latency_s=1e-6,
        ))
        spec = TransferSpec(input_bytes=1_000_000, output_bytes=0)
        assert model.time_s(spec) == pytest.approx(1e-6 + 1e-3)

    def test_copies_scale_linearly(self):
        model = TransferModel()
        spec = TransferSpec(input_bytes=4096, output_bytes=4096)
        once = model.time_s(spec)
        doubled_in = model.time_s(spec, input_copies=2)
        doubled_both = model.time_s(spec, input_copies=2, output_copies=2)
        assert doubled_both == pytest.approx(2 * once)
        assert once < doubled_in < doubled_both

    def test_zero_copies(self):
        model = TransferModel()
        spec = TransferSpec(input_bytes=4096, output_bytes=4096)
        assert model.time_s(spec, input_copies=0, output_copies=0) == 0.0

    def test_negative_copies_rejected(self):
        model = TransferModel()
        spec = TransferSpec(input_bytes=1, output_bytes=1)
        with pytest.raises(ValueError):
            model.time_s(spec, input_copies=-1)

    def test_spec_total(self):
        assert TransferSpec(10, 20).total_bytes == 30
