"""Scheme comparison tests (Figure 10 building blocks)."""

import pytest

from repro.baselines.schemes import (
    SCHEME_ORDER,
    compare_schemes,
    make_scheme,
)
from repro.common.config import GPUConfig
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def scan_results():
    """All five schemes on scan with real per-SM occupancy (several
    warps per SM) — at tiny scales the pipeline is idle-dominated and
    every redundancy scheme hides for free.  Module-scoped: the
    simulations dominate this file's runtime."""
    return compare_schemes(
        get_workload("scan"), GPUConfig.small(2), scale=1.0
    )


class TestSchemeMechanics:
    def test_all_schemes_present(self, scan_results):
        assert set(scan_results) == set(SCHEME_ORDER)

    def test_rnaive_doubles_kernel_and_transfers(self, scan_results):
        original = scan_results["original"]
        rnaive = scan_results["r-naive"]
        assert rnaive.kernel_cycles == 2 * original.kernel_cycles
        assert rnaive.transfer_time_s == pytest.approx(
            2 * original.transfer_time_s
        )

    def test_rthread_doubles_output_transfer_only(self, scan_results):
        original = scan_results["original"]
        rthread = scan_results["r-thread"]
        assert original.transfer_time_s < rthread.transfer_time_s \
            < 2 * original.transfer_time_s + 1e-12
        # duplicated blocks mean more kernel work than the original
        assert rthread.kernel_cycles > original.kernel_cycles

    def test_dmtr_roughly_doubles_kernel(self, scan_results):
        original = scan_results["original"]
        dmtr = scan_results["dmtr"]
        assert dmtr.kernel_cycles > 1.5 * original.kernel_cycles
        assert dmtr.transfer_time_s == original.transfer_time_s

    def test_warped_dmr_cheapest_detection_scheme(self, scan_results):
        """The paper's Figure 10 ordering: Warped-DMR beats every other
        detection scheme end-to-end."""
        warped = scan_results["warped-dmr"].total_time_s
        for other in ("r-naive", "r-thread", "dmtr"):
            assert warped < scan_results[other].total_time_s

    def test_rnaive_slowest(self, scan_results):
        rnaive = scan_results["r-naive"].total_time_s
        for other in SCHEME_ORDER:
            if other != "r-naive":
                assert rnaive >= scan_results[other].total_time_s

    def test_total_is_kernel_plus_transfer(self, scan_results):
        for result in scan_results.values():
            assert result.total_time_s == pytest.approx(
                result.kernel_time_s + result.transfer_time_s
            )


class TestRThreadHiding:
    def test_redundant_blocks_hide_on_idle_sms(self):
        """Paper: Bitonic Sort's R-Thread cost hides because idle SMs
        absorb the duplicated blocks."""
        workload = get_workload("bitonic")
        # bitonic at this scale launches 2 blocks; a 4-SM chip has room
        roomy = compare_schemes(
            workload, GPUConfig.small(4), scale=0.5,
            schemes=["original", "r-thread"],
        )
        slack = roomy["r-thread"].kernel_cycles / roomy["original"].kernel_cycles
        # and on a 1-SM chip the duplicate stacks on the same SM
        cramped = compare_schemes(
            workload, GPUConfig.small(1), scale=0.5,
            schemes=["original", "r-thread"],
        )
        stacked = (cramped["r-thread"].kernel_cycles
                   / cramped["original"].kernel_cycles)
        assert slack < stacked
        assert slack == pytest.approx(1.0, abs=0.25)


class TestFactory:
    def test_make_scheme_unknown_name(self):
        with pytest.raises(KeyError):
            make_scheme("nonsense", GPUConfig.small(1))

    def test_scheme_names_match_registry(self):
        for name in SCHEME_ORDER:
            assert make_scheme(name, GPUConfig.small(1)).name == name
