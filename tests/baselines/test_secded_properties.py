"""Property tests: the Hamming(72,64) SECDED codec.

The ECC baseline's claim to exhaustive single-bit coverage rests on
four codec invariants, each searched here by Hypothesis over random
64-bit words and bit positions:

* encode → decode is the identity on clean codewords,
* every single-bit flip (any of the 72 positions) is corrected back to
  the original data,
* every double-bit flip is detected and never miscorrected — the
  decoder must not hand back *wrong* data labelled CORRECTED,
* the syndrome is zero iff the codeword is untouched.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.baselines.secded import (CODE_BITS, DATA_BITS, CodecStatus,
                                    data_bit_position, decode, encode,
                                    extract_data)

words = st.integers(0, 2**DATA_BITS - 1)
positions = st.integers(0, CODE_BITS - 1)


class TestRoundTrip:
    @given(data=words)
    def test_clean_round_trip(self, data):
        decoded = decode(encode(data))
        assert decoded.status is CodecStatus.CLEAN
        assert decoded.data == data
        assert decoded.syndrome == 0
        assert decoded.corrected_bit is None

    @given(data=words)
    def test_extract_data_inverts_encode(self, data):
        assert extract_data(encode(data)) == data

    @given(data=words)
    def test_codeword_fits_the_width(self, data):
        assert 0 <= encode(data) < 2**CODE_BITS


class TestSingleBitFlips:
    @given(data=words, pos=positions)
    def test_every_single_flip_is_corrected(self, data, pos):
        decoded = decode(encode(data) ^ (1 << pos))
        assert decoded.status is CodecStatus.CORRECTED
        assert decoded.data == data
        assert decoded.corrected_bit == pos

    @settings(max_examples=20)
    @given(data=words)
    def test_all_72_positions_exhaustively(self, data):
        codeword = encode(data)
        for pos in range(CODE_BITS):
            decoded = decode(codeword ^ (1 << pos))
            assert decoded.status is CodecStatus.CORRECTED
            assert decoded.data == data

    @given(data=words, bit=st.integers(0, DATA_BITS - 1))
    def test_data_bit_position_maps_onto_the_strike_model(self, data, bit):
        """Flipping codeword position ``data_bit_position(bit)`` is the
        same strike as flipping data bit ``bit`` pre-encode."""
        pos = data_bit_position(bit)
        struck = encode(data) ^ (1 << pos)
        assert extract_data(struck) == data ^ (1 << bit)
        assert decode(struck).data == data


class TestDoubleBitFlips:
    @given(data=words, first=positions, second=positions)
    def test_every_double_flip_detected_never_miscorrected(
            self, data, first, second):
        if first == second:
            return  # two flips on one bit cancel: covered by round-trip
        decoded = decode(encode(data) ^ (1 << first) ^ (1 << second))
        assert decoded.status is CodecStatus.DETECTED
        assert decoded.corrected_bit is None


class TestSyndrome:
    @given(data=words, flips=st.sets(positions, min_size=0, max_size=2))
    def test_syndrome_zero_iff_clean(self, data, flips):
        """Within the codec's guarantee (<= 2 flips), a zero syndrome
        plus CLEAN status appears exactly when nothing was struck.
        (Weight-4 patterns can map codeword to codeword — distance 4 —
        so the iff only holds inside the SECDED envelope.)"""
        codeword = encode(data)
        for pos in flips:
            codeword ^= 1 << pos
        decoded = decode(codeword)
        clean = not flips
        assert (decoded.syndrome == 0
                and decoded.status is CodecStatus.CLEAN) == clean
