"""Campaign integration across the protection-scheme zoo.

Every scheme (full Warped-DMR, the SECDED ECC baseline, partial thread
protection) must hold the campaign engine's bit-identity contract:
parallel fan-out classifies byte-identically to the serial loop —
including the merged obs payloads that carry the overhead counters —
and a warm cache replays the whole campaign with zero simulations.
Byte-identity is judged in the same currency the chaos harness uses:
canonical JSON over run payloads.
"""

from __future__ import annotations

import pytest

from repro.baselines.partial import select_protected_pcs, \
    vulnerability_profile
from repro.common.config import DMRConfig, GPUConfig
from repro.common.errors import ConfigError
from repro.faults.campaign import CampaignEngine, CampaignSpec
from repro.faults.sampler import FaultSampler
from repro.resilience.chaos import _canonical_runs

N_FAULTS = 6


def make_spec(scheme: str, dmr: DMRConfig) -> CampaignSpec:
    return CampaignSpec(workload="scan", config=GPUConfig.small(1),
                        dmr=dmr, scale=0.25, seed=0, obs=True,
                        scheme=scheme)


def sampled_faults(spec: CampaignSpec, n: int = N_FAULTS) -> list:
    horizon = CampaignEngine(spec).golden_result().cycles
    return FaultSampler(spec.config, windows=2).sample(n, horizon, seed=7)


@pytest.fixture(scope="module")
def scheme_specs() -> dict:
    """label -> spec for each zoo member, partial calibrated from DMR."""
    dmr_spec = make_spec("dmr", DMRConfig.paper_default())
    runs = CampaignEngine(dmr_spec).run(sampled_faults(dmr_spec)).runs
    pcs = select_protected_pcs(vulnerability_profile(runs), budget=2)
    return {
        "dmr": dmr_spec,
        "secded": make_spec("secded", DMRConfig.disabled()),
        "partial": make_spec("dmr",
                             DMRConfig.paper_default()
                             .with_protected_pcs(pcs)),
    }


class TestParallelBitIdentity:
    @pytest.mark.parametrize("label", ["dmr", "secded", "partial"])
    def test_parallel_matches_serial_byte_identically(self, label,
                                                      scheme_specs,
                                                      tmp_path):
        spec = scheme_specs[label]
        faults = sampled_faults(spec)
        serial = CampaignEngine(spec, cache=tmp_path / "serial").run(faults)
        parallel = CampaignEngine(spec, cache=tmp_path / "parallel",
                                  jobs=2).run(faults)
        assert _canonical_runs(parallel) == _canonical_runs(serial)


class TestWarmCacheReplay:
    @pytest.mark.parametrize("label", ["dmr", "secded", "partial"])
    def test_warm_rerun_is_simulation_free(self, label, scheme_specs,
                                           tmp_path):
        spec = scheme_specs[label]
        faults = sampled_faults(spec)
        cold = CampaignEngine(spec, cache=tmp_path)
        cold_result = cold.run(faults)
        assert cold.simulations == len(faults)

        warm = CampaignEngine(spec, cache=tmp_path)
        warm_result = warm.run(faults)
        assert warm.simulations == 0
        assert _canonical_runs(warm_result) == _canonical_runs(cold_result)


class TestOverheadAccounting:
    def test_secded_charges_checks_and_storage(self, scheme_specs):
        spec = scheme_specs["secded"]
        result = CampaignEngine(spec).run(sampled_faults(spec))
        snapshot = result.metrics()
        assert snapshot.value("protection_runs") == N_FAULTS
        assert snapshot.value("protection_storage_bits") > 0
        assert snapshot.value("secded_checks") > 0
        # 8 parity bits per 64 data bits: exactly 12.5% of base storage
        assert (8 * snapshot.value("protection_base_storage_bits")
                == 64 * snapshot.value("protection_storage_bits"))

    def test_unprotected_baseline_charges_nothing(self):
        spec = make_spec("dmr", DMRConfig.disabled())
        result = CampaignEngine(spec).run(sampled_faults(spec))
        snapshot = result.metrics()
        assert snapshot.value("protection_storage_bits") == 0
        assert snapshot.value("protection_extra_cycles") == 0

    def test_partial_coverage_bounded_by_full_dmr(self, scheme_specs):
        full_spec = scheme_specs["dmr"]
        part_spec = scheme_specs["partial"]
        faults = sampled_faults(full_spec)
        full = CampaignEngine(full_spec).run(faults)
        part = CampaignEngine(part_spec).run(faults)
        assert part.detected_runs <= full.detected_runs


class TestSpecValidation:
    def test_secded_rejects_enabled_dmr(self):
        with pytest.raises(ConfigError):
            make_spec("secded", DMRConfig.paper_default())

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigError):
            make_spec("parity", DMRConfig.disabled())
