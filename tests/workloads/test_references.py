"""Cross-validation of the workloads' host reference implementations.

The simulator is checked against these references, so the references
themselves are checked here against independent ground truth (known
closed forms, numpy, graph invariants).
"""

import math
import random

import numpy as np
import pytest

from repro.workloads.bfs import cpu_bfs, random_graph, to_csr
from repro.workloads.cufft import bit_reverse, cpu_fft
from repro.workloads.laplace import LaplaceWorkload
from repro.workloads.libor import cpu_libor_path
from repro.workloads.mum import cpu_match_length
from repro.workloads.nqueen import KNOWN_SOLUTIONS, cpu_nqueen_thread
from repro.workloads.sha import cpu_sha_rounds, _rotl, _signed


class TestNQueenReference:
    @pytest.mark.parametrize("n", [4, 5, 6, 7])
    def test_total_matches_known_counts(self, n):
        total = sum(cpu_nqueen_thread(n, t) for t in range(n * n))
        assert total == KNOWN_SOLUTIONS[n]

    def test_conflicting_prefixes_yield_zero(self):
        # same column for both queens can never work
        n = 6
        for col in range(n):
            tid = col + n * col  # c0 == c1
            assert cpu_nqueen_thread(n, tid) == 0


class TestSHAReference:
    def test_rotl_known_values(self):
        assert _rotl(1, 1) == 2
        assert _rotl(0x80000000, 1) == 1
        assert _rotl(0x12345678, 4) == 0x23456781

    def test_signed_conversion(self):
        assert _signed(0xFFFFFFFF) == -1
        assert _signed(0x7FFFFFFF) == 0x7FFFFFFF

    def test_digest_deterministic(self):
        message = list(range(16))
        assert cpu_sha_rounds(message, 24) == cpu_sha_rounds(message, 24)

    def test_avalanche(self):
        """Flipping one message bit changes (essentially) the digest."""
        rng = random.Random(3)
        message = [rng.randrange(1 << 32) for _ in range(16)]
        base = cpu_sha_rounds(message, 24)
        flipped = list(message)
        flipped[7] ^= 1 << 13
        assert cpu_sha_rounds(flipped, 24) != base

    def test_round_count_matters(self):
        message = list(range(16))
        assert cpu_sha_rounds(message, 20) != cpu_sha_rounds(message, 24)

    def test_digest_words_are_signed_32bit(self):
        for word in cpu_sha_rounds(list(range(16)), 24):
            assert -(1 << 31) <= word < (1 << 31)


class TestFFTReference:
    def test_bit_reverse_involution(self):
        for bits in (3, 5, 6):
            for i in range(1 << bits):
                assert bit_reverse(bit_reverse(i, bits), bits) == i

    @pytest.mark.parametrize("n", [8, 16, 64])
    def test_matches_numpy(self, n):
        rng = random.Random(n)
        real = [rng.uniform(-1, 1) for _ in range(n)]
        imag = [rng.uniform(-1, 1) for _ in range(n)]
        bits = n.bit_length() - 1
        rev_r = [real[bit_reverse(k, bits)] for k in range(n)]
        rev_i = [imag[bit_reverse(k, bits)] for k in range(n)]
        out_r, out_i = cpu_fft(rev_r, rev_i)
        reference = np.fft.fft(np.array(real) + 1j * np.array(imag))
        for k in range(n):
            assert out_r[k] == pytest.approx(reference[k].real, abs=1e-9)
            assert out_i[k] == pytest.approx(reference[k].imag, abs=1e-9)

    def test_impulse_is_flat(self):
        n = 16
        bits = 4
        real = [0.0] * n
        real[0] = 1.0  # impulse at 0 is bit-reversal invariant
        out_r, out_i = cpu_fft(list(real), [0.0] * n)
        for k in range(n):
            assert out_r[k] == pytest.approx(1.0)
            assert out_i[k] == pytest.approx(0.0, abs=1e-12)


class TestBFSReference:
    def test_random_graph_reaches_everything(self):
        rng = random.Random(0)
        adjacency = random_graph(50, 10, rng)
        levels = cpu_bfs(adjacency)
        assert all(level >= 0 for level in levels)
        assert levels[0] == 0

    def test_levels_respect_edges(self):
        rng = random.Random(1)
        adjacency = random_graph(40, 20, rng)
        levels = cpu_bfs(adjacency)
        for node, neighbors in enumerate(adjacency):
            for neighbor in neighbors:
                assert levels[neighbor] <= levels[node] + 1

    def test_csr_roundtrip(self):
        adjacency = [[1, 2], [], [0]]
        row_offsets, col_indices = to_csr(adjacency)
        assert row_offsets == [0, 2, 2, 3]
        assert col_indices == [1, 2, 0]


class TestLaplaceReference:
    def test_boundary_never_changes(self):
        width = height = 6
        grid = [float(i) for i in range(width * height)]
        out = LaplaceWorkload.cpu_reference(grid, width, height, 5)
        for x in range(width):
            assert out[x] == grid[x]
            assert out[(height - 1) * width + x] == grid[(height - 1) * width + x]
        for y in range(height):
            assert out[y * width] == grid[y * width]

    def test_uniform_field_is_fixed_point(self):
        width = height = 5
        grid = [7.0] * (width * height)
        out = LaplaceWorkload.cpu_reference(grid, width, height, 8)
        assert out == grid

    def test_smoothing_contracts_range(self):
        rng = random.Random(2)
        width = height = 8
        grid = [rng.uniform(0, 100) for _ in range(width * height)]
        out = LaplaceWorkload.cpu_reference(grid, width, height, 20)
        interior = [
            out[y * width + x]
            for y in range(1, height - 1) for x in range(1, width - 1)
        ]
        assert max(interior) <= max(grid) + 1e-9
        assert min(interior) >= min(grid) - 1e-9


class TestLiborReference:
    def test_deterministic(self):
        assert cpu_libor_path(0.05, 3, 16) == cpu_libor_path(0.05, 3, 16)

    def test_value_nonnegative(self):
        for gtid in range(8):
            assert cpu_libor_path(0.04, gtid, 16) >= 0.0

    def test_deep_out_of_money_is_worthless(self):
        # a tiny rate stays under the strike through every step
        assert cpu_libor_path(1e-6, 0, 8) == 0.0

    def test_more_steps_accumulate_value(self):
        shallow = cpu_libor_path(0.08, 1, 4)
        deep = cpu_libor_path(0.08, 1, 16)
        assert deep >= shallow


class TestMUMReference:
    def test_full_match(self):
        ref = [0, 1, 2, 3, 0, 1]
        assert cpu_match_length(ref, [2, 3, 0], anchor=2) == 3

    def test_immediate_mismatch(self):
        ref = [0, 1, 2, 3]
        assert cpu_match_length(ref, [3, 3], anchor=0) == 0

    def test_partial_match(self):
        ref = [0, 1, 2, 3]
        assert cpu_match_length(ref, [1, 2, 0], anchor=1) == 2

    def test_reference_end_stops_match(self):
        ref = [0, 1]
        assert cpu_match_length(ref, [1, 0, 0], anchor=1) == 1
