"""Functional and characterization tests for all 11 paper workloads.

Every workload must (a) produce bit-exact output against its host
reference under simulation, and (b) exhibit the divergence/instruction
character the paper attributes to it (that character is what the
evaluation measures).
"""

import pytest

from repro.common.config import DMRConfig, GPUConfig
from repro.sim.gpu import GPU
from repro.workloads import PAPER_ORDER, all_workloads, get_workload
from repro.analysis.active_threads import active_thread_breakdown
from repro.analysis.inst_mix import unit_mix


CONFIG = GPUConfig.small(2)


def simulate(name, scale=0.5, dmr=None, seed=0):
    workload = get_workload(name)
    run = workload.prepare(scale=scale, seed=seed)
    gpu = GPU(CONFIG, dmr=dmr or DMRConfig.disabled())
    result = gpu.launch(run.program, run.launch, memory=run.memory)
    return workload, run, result


class TestRegistry:
    def test_paper_order_complete(self):
        assert len(PAPER_ORDER) == 11
        assert set(all_workloads()) == set(PAPER_ORDER)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            get_workload("quake")

    def test_metadata_present(self):
        for workload in all_workloads().values():
            assert workload.name
            assert workload.display_name
            assert workload.category
            assert workload.paper_params


@pytest.mark.parametrize("name", PAPER_ORDER)
class TestFunctionalCorrectness:
    def test_output_matches_host_reference(self, name):
        _, run, _ = simulate(name)
        run.check(run.memory)

    def test_correct_under_warped_dmr(self, name):
        """DMR must never change architectural results."""
        _, run, result = simulate(name, dmr=DMRConfig.paper_default())
        run.check(run.memory)
        assert len(result.detections) == 0  # no faults injected

    def test_deterministic_across_runs(self, name):
        _, run_a, result_a = simulate(name)
        _, run_b, result_b = simulate(name)
        assert result_a.cycles == result_b.cycles
        assert run_a.output_of(run_a.memory) == run_b.output_of(run_b.memory)

    def test_seed_changes_data_not_validity(self, name):
        _, run, _ = simulate(name, seed=7)
        run.check(run.memory)

    def test_transfer_spec_positive(self, name):
        run = get_workload(name).prepare(scale=0.5)
        assert run.transfer.output_bytes > 0
        assert run.transfer.input_bytes >= 0


class TestCharacterization:
    """Each workload must reproduce its paper-measured character."""

    def test_bfs_is_divergence_dominated(self):
        _, _, result = simulate("bfs")
        bins = active_thread_breakdown(result)
        assert bins["1"] + bins["2-11"] > 0.5

    def test_matrixmul_fully_utilized(self):
        _, _, result = simulate("matrixmul", scale=1.0)
        assert active_thread_breakdown(result)["32"] > 0.9

    def test_libor_leans_on_sfu(self):
        _, _, result = simulate("libor")
        assert unit_mix(result)["SFU"] > 0.1

    def test_sha_is_integer_sp_heavy(self):
        _, _, result = simulate("sha", scale=1.0)
        assert unit_mix(result)["SP"] > 0.8

    def test_sha_has_long_sp_runs(self):
        _, _, result = simulate("sha", scale=1.0)
        histogram = result.stats.histogram("unit_run_SP")
        assert max(histogram.as_dict()) > 20

    def test_bitonic_half_warp_masks(self):
        _, _, result = simulate("bitonic", scale=1.0)
        bins = active_thread_breakdown(result)
        assert bins["12-21"] > 0.4   # the ixj>tid half-warps

    def test_mum_mostly_below_half_warp(self):
        _, _, result = simulate("mum", scale=1.0)
        bins = active_thread_breakdown(result)
        assert bins["1"] + bins["2-11"] + bins["12-21"] > 0.5

    def test_nqueen_diverges(self):
        _, _, result = simulate("nqueen", scale=1.0)
        assert result.stats.value("divergent_branches") > 0

    def test_scan_has_shrinking_masks(self):
        _, _, result = simulate("scan", scale=1.0)
        histogram = result.stats.histogram("active_threads")
        observed = set(histogram.as_dict())
        assert len(observed & {31, 30, 28, 24, 16}) >= 3

    def test_laplace_boundary_fringe(self):
        _, _, result = simulate("laplace", scale=1.0)
        bins = active_thread_breakdown(result)
        assert bins["32"] > 0.2          # unguarded work
        assert bins["12-21"] + bins["22-31"] > 0.2  # interior-only work

    def test_cufft_high_utilization(self):
        _, _, result = simulate("cufft", scale=1.0)
        assert active_thread_breakdown(result)["32"] > 0.8
