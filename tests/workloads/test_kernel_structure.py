"""Structural checks on the workload kernels themselves.

These verify the *programs* (not the runs): register pressure within a
real SM's budget, shared-memory footprints in bounds, divergent kernels
actually containing divergent branches, and launch geometry consistent
with the paper's occupancy assumptions.
"""

import pytest

from repro.common.config import GPUConfig
from repro.isa.opcodes import Opcode, UnitType
from repro.workloads import PAPER_ORDER, get_workload

CONFIG = GPUConfig.paper_baseline()


@pytest.fixture(scope="module")
def prepared():
    return {name: get_workload(name).prepare(scale=1.0)
            for name in PAPER_ORDER}


class TestRegisterPressure:
    def test_register_count_fits_hardware(self, prepared):
        """64 KB RF / 1024 threads = 16 words per thread at full
        occupancy; our kernels may use more (they run at lower
        occupancy) but must stay under a generous 64-register bound."""
        for name, run in prepared.items():
            assert run.program.num_registers <= 64, (
                name, run.program.num_registers
            )

    def test_predicate_count_small(self, prepared):
        for name, run in prepared.items():
            assert run.program.num_predicates <= 8, name


class TestControlFlowStructure:
    DIVERGENT = ("bfs", "nqueen", "mum", "bitonic")
    STRAIGHT = ("sha",)

    def test_divergent_kernels_have_conditional_branches(self, prepared):
        for name in self.DIVERGENT:
            program = prepared[name].program
            branches = [
                inst for inst in program.instructions
                if inst.opcode is Opcode.BRA
            ]
            assert branches, name
            assert program.reconvergence, name

    def test_sha_is_straightline(self, prepared):
        program = prepared["sha"].program
        assert not any(
            inst.opcode in (Opcode.BRA, Opcode.JMP)
            for inst in program.instructions
        )

    def test_every_kernel_terminates_with_exit(self, prepared):
        for name, run in prepared.items():
            assert run.program.instructions[-1].opcode is Opcode.EXIT, name


class TestUnitUsage:
    def test_sfu_only_where_expected(self, prepared):
        for name, run in prepared.items():
            has_sfu = run.program.unit_mix()[UnitType.SFU] > 0
            assert has_sfu == (name in ("libor", "cufft")), name

    def test_everyone_touches_memory(self, prepared):
        for name, run in prepared.items():
            assert run.program.unit_mix()[UnitType.LDST] > 0, name


class TestLaunchGeometry:
    def test_block_fits_sm(self, prepared):
        for name, run in prepared.items():
            assert run.launch.block_dim <= CONFIG.max_threads_per_sm, name

    def test_whole_warps_or_documented_partial(self, prepared):
        # nqueen intentionally launches partial warps (36 threads)
        for name, run in prepared.items():
            if name == "nqueen":
                continue
            assert run.launch.block_dim % CONFIG.warp_size == 0, name

    def test_shared_memory_footprint(self, prepared):
        budget = CONFIG.shared_memory_bytes // 4
        static_use = {
            "scan": 64, "bitonic": 128, "radixsort": 3 * 64,
            "laplace": 2 * 64, "cufft": 2 * 64,
            "nqueen": 36 * 24,
        }
        for name, words in static_use.items():
            assert words <= budget, name


class TestScaling:
    @pytest.mark.parametrize("name", PAPER_ORDER)
    def test_scale_shrinks_thread_count(self, name):
        big = get_workload(name).prepare(scale=1.0)
        small = get_workload(name).prepare(scale=0.3)
        assert (small.launch.total_threads <= big.launch.total_threads)

    @pytest.mark.parametrize("name", PAPER_ORDER)
    def test_extreme_small_scale_still_valid(self, name):
        run = get_workload(name).prepare(scale=0.1)
        assert len(run.program) > 0
        assert run.launch.total_threads > 0
