"""Tests for the per-SM pipeline probe.

The probe is duck-typed over issue events, so these tests drive it with
a minimal stand-in instead of constructing real simulator events —
which also proves ``repro.obs`` needs nothing from ``repro.sim``.
"""

from types import SimpleNamespace

from repro.obs.metrics import MetricsRegistry
from repro.obs.probes import (
    DEPTH_BOUNDS,
    OCCUPANCY_BOUNDS,
    PipelineProbe,
    SCAN_BOUNDS,
)
from repro.obs.tracer import Tracer


def fake_event(cycle=3, warp_id=1, pc=8, active=16,
               opcode="IADD", unit="alu"):
    return SimpleNamespace(
        cycle=cycle, warp_id=warp_id, pc=pc, active_count=active,
        instruction=SimpleNamespace(
            opcode=SimpleNamespace(value=opcode),
            unit=SimpleNamespace(value=unit),
        ),
    )


class TestCycleSampling:
    def test_occupancy_gauge_and_histogram(self):
        registry = MetricsRegistry()
        probe = PipelineProbe(registry, sm_id=0)
        probe.on_cycle(0, resident_warps=8)
        probe.on_cycle(1, resident_warps=4)
        gauge = registry.gauge("warp_occupancy")
        assert gauge.count == 2
        assert (gauge.min, gauge.max) == (4, 8)
        hist = registry.fixed_histogram("warp_occupancy", OCCUPANCY_BOUNDS)
        assert hist.total == 2

    def test_queue_depth_sampled_only_when_bound(self):
        registry = MetricsRegistry()
        probe = PipelineProbe(registry, sm_id=0)
        probe.on_cycle(0, resident_warps=1)
        assert registry.gauge("replayq_depth").count == 0

        depth = [0]
        probe.bind_queue_depth(lambda: depth[0])
        depth[0] = 3
        probe.on_cycle(1, resident_warps=1)
        gauge = registry.gauge("replayq_depth")
        assert gauge.count == 1 and gauge.value == 3
        assert registry.fixed_histogram("replayq_depth",
                                        DEPTH_BOUNDS).total == 1

    def test_depth_counter_track_emits_only_on_change(self):
        tracer = Tracer()
        probe = PipelineProbe(MetricsRegistry(), sm_id=0, tracer=tracer)
        depth = [2]
        probe.bind_queue_depth(lambda: depth[0])
        probe.on_cycle(0, 1)
        probe.on_cycle(1, 1)       # unchanged -> no new sample
        depth[0] = 5
        probe.on_cycle(2, 1)
        counters = [e for e in tracer.to_payload()["traceEvents"]
                    if e["ph"] == "C"]
        assert [c["args"]["entries"] for c in counters] == [2, 5]


class TestIssueAndStall:
    def test_on_issue_without_tracer_is_noop(self):
        probe = PipelineProbe(MetricsRegistry(), sm_id=0)
        probe.on_issue(fake_event())  # must not raise

    def test_on_issue_emits_span_and_thread_name(self):
        tracer = Tracer()
        probe = PipelineProbe(MetricsRegistry(), sm_id=2, tracer=tracer)
        probe.on_issue(fake_event(cycle=9, warp_id=5))
        events = tracer.to_payload()["traceEvents"]
        span = next(e for e in events if e["ph"] == "X")
        assert (span["pid"], span["tid"], span["ts"]) == (2, 5, 9)
        assert span["name"] == "IADD"
        assert span["args"]["unit"] == "alu"
        names = [e for e in events if e["ph"] == "M"]
        assert {e["args"]["name"] for e in names} == {"SM 2", "warp 5"}

    def test_on_stall_counts_per_cause(self):
        registry = MetricsRegistry()
        probe = PipelineProbe(registry, sm_id=0)
        probe.on_stall("raw", 2, cycle=10)
        probe.on_stall("raw", 1, cycle=11)
        probe.on_stall("flush", 4, cycle=12)
        assert registry.value("stall_raw") == 3
        assert registry.value("stall_flush") == 4


class TestSchedulerHooks:
    def test_scan_depth_and_no_ready(self):
        registry = MetricsRegistry()
        probe = PipelineProbe(registry, sm_id=0)
        probe.on_schedule(scanned=2, found=True)
        probe.on_schedule(scanned=8, found=False)
        assert registry.fixed_histogram("sched_scan_depth",
                                        SCAN_BOUNDS).total == 2
        assert registry.value("sched_no_ready") == 1


class TestDMRHooks:
    def test_intra_pairing(self):
        registry = MetricsRegistry()
        probe = PipelineProbe(registry, sm_id=0)
        probe.on_intra_pairing(fake_event(), verified_lanes=4,
                               redundant_executions=2)
        assert registry.value("dmr_pair_intra") == 1
        assert registry.value("dmr_pair_intra_lanes") == 4
        assert registry.value("dmr_shuffled_pairs") == 2

    def test_inter_verify_counts_path_and_shuffle(self):
        registry = MetricsRegistry()
        probe = PipelineProbe(registry, sm_id=0)
        probe.on_inter_verify(fake_event(active=8), "coexec", cycle=4,
                              shuffled=True)
        probe.on_inter_verify(fake_event(active=8), "drain_idle", cycle=5,
                              shuffled=False)
        assert registry.value("dmr_pair_inter") == 2
        assert registry.value("dmr_inter_coexec") == 1
        assert registry.value("dmr_inter_drain_idle") == 1
        assert registry.value("dmr_pair_inter_lanes") == 16
        assert registry.value("dmr_shuffled_pairs") == 8

    def test_enqueue_instant_records_depth(self):
        tracer = Tracer()
        registry = MetricsRegistry()
        probe = PipelineProbe(registry, sm_id=0, tracer=tracer)
        probe.on_enqueue(fake_event(), depth=3)
        assert registry.value("dmr_enqueues") == 1
        instant = next(e for e in tracer.to_payload()["traceEvents"]
                       if e["ph"] == "i")
        assert instant["args"]["depth"] == 3
