"""Property tests for snapshot merge algebra.

``run_suite(parallel=N)`` and the campaign engine fold worker snapshots
in whatever order completes; determinism therefore rests on ``merge``
being associative and commutative with the empty snapshot as identity.
These properties are asserted over randomly generated registries, with
byte-level equality (``canonical_json``) as the judge — the same
currency the serial-vs-parallel acceptance tests use.

Gauge totals and histogram keys are generated as ints only: float
addition is not associative, and the merge contract is exact-bytes, not
approximately-equal.
"""

from hypothesis import given, settings, strategies as st

from repro.obs.metrics import (
    FixedHistogram,
    MetricSnapshot,
    MetricsRegistry,
    merge_snapshots,
)

names = st.sampled_from(
    ["cycles_total", "dmr_pair_intra", "stall_raw", "warp_occupancy"]
)
amounts = st.integers(min_value=0, max_value=1 << 20)
values = st.integers(min_value=-(1 << 16), max_value=1 << 16)

#: one bucket layout per histogram name, so merges never face a
#: bounds mismatch (mismatches are a hard error, tested separately)
BOUNDS = {
    "cycles_total": (1, 4, 16),
    "dmr_pair_intra": (0, 2, 8, 32),
    "stall_raw": (10,),
    "warp_occupancy": (0, 1, 2, 4, 8, 16, 32),
}

write = st.one_of(
    st.tuples(st.just("inc"), names, amounts),
    st.tuples(st.just("observe"), names, values),
    st.tuples(st.just("set_gauge"), names, values),
    st.tuples(st.just("sample"), names, values),
)


@st.composite
def snapshots(draw):
    registry = MetricsRegistry()
    for op, name, value in draw(st.lists(write, max_size=20)):
        if op == "inc":
            registry.inc(name, value)
        elif op == "observe":
            registry.observe(name, value)
        elif op == "set_gauge":
            registry.set_gauge(name, value)
        else:
            registry.sample(name, BOUNDS[name], value)
    return registry.snapshot()


def canon(snapshot: MetricSnapshot) -> str:
    return snapshot.canonical_json()


class TestMergeAlgebra:
    @given(snapshots(), snapshots(), snapshots())
    @settings(max_examples=60, deadline=None)
    def test_associative(self, a, b, c):
        assert canon(a.merge(b).merge(c)) == canon(a.merge(b.merge(c)))

    @given(snapshots(), snapshots())
    @settings(max_examples=60, deadline=None)
    def test_commutative(self, a, b):
        assert canon(a.merge(b)) == canon(b.merge(a))

    @given(snapshots())
    @settings(max_examples=60, deadline=None)
    def test_empty_is_identity(self, a):
        empty = MetricSnapshot.empty()
        assert canon(a.merge(empty)) == canon(a)
        assert canon(empty.merge(a)) == canon(a)

    @given(st.lists(snapshots(), max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_fold_equals_pairwise(self, snaps):
        folded = merge_snapshots(snaps)
        pairwise = MetricSnapshot.empty()
        for snap in snaps:
            pairwise = pairwise.merge(snap)
        assert canon(folded) == canon(pairwise)

    @given(snapshots(), snapshots())
    @settings(max_examples=60, deadline=None)
    def test_merge_does_not_mutate_inputs(self, a, b):
        before_a, before_b = canon(a), canon(b)
        a.merge(b)
        assert canon(a) == before_a
        assert canon(b) == before_b


class TestBucketPreservation:
    @given(
        st.lists(values, max_size=50),
        st.lists(values, max_size=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_preserves_total_count(self, left, right):
        bounds = (0, 4, 16, 64)
        a = FixedHistogram("depth", bounds)
        b = FixedHistogram("depth", bounds)
        for v in left:
            a.add(v)
        for v in right:
            b.add(v)
        a.merge(b)
        assert a.total == len(left) + len(right)
        assert sum(a.counts) == a.total

    @given(st.lists(values, max_size=50), st.lists(values, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_union_fill(self, left, right):
        bounds = (0, 4, 16, 64)
        merged = FixedHistogram("depth", bounds)
        union = FixedHistogram("depth", bounds)
        other = FixedHistogram("depth", bounds)
        for v in left:
            merged.add(v)
        for v in right:
            other.add(v)
        merged.merge(other)
        for v in left + right:
            union.add(v)
        assert merged.counts == union.counts
