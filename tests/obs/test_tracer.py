"""Tests for the Chrome trace_event exporter."""

import json

import pytest

from repro.obs.tracer import Tracer


class TestEventShapes:
    def test_duration_event(self):
        t = Tracer()
        t.duration(0, 3, "IADD", ts=10, dur=1, args={"pc": 4})
        (event,) = t.to_payload()["traceEvents"]
        assert event["ph"] == "X"
        assert (event["pid"], event["tid"]) == (0, 3)
        assert (event["ts"], event["dur"]) == (10, 1)
        assert event["args"] == {"pc": 4}

    def test_instant_event_is_thread_scoped(self):
        t = Tracer()
        t.instant(1, 2, "intra-DMR", ts=5)
        (event,) = t.to_payload()["traceEvents"]
        assert event["ph"] == "i"
        assert event["s"] == "t"
        assert "args" not in event

    def test_counter_event(self):
        t = Tracer()
        t.counter(0, "ReplayQ depth", ts=7, values={"entries": 3})
        (event,) = t.to_payload()["traceEvents"]
        assert event["ph"] == "C"
        assert event["args"] == {"entries": 3}

    def test_len_counts_events_not_metadata(self):
        t = Tracer()
        t.process_name(0, "SM 0")
        t.instant(0, 0, "x", ts=0)
        assert len(t) == 1


class TestTrackNaming:
    def test_metadata_precedes_events(self):
        t = Tracer()
        t.instant(0, 1, "x", ts=0)
        t.process_name(0, "SM 0")
        t.thread_name(0, 1, "warp 1")
        events = t.to_payload()["traceEvents"]
        assert [e["ph"] for e in events] == ["M", "M", "i"]
        assert events[0]["args"] == {"name": "SM 0"}

    def test_naming_is_idempotent(self):
        t = Tracer()
        for _ in range(3):
            t.process_name(0, "SM 0")
            t.thread_name(0, 1, "warp 1")
        assert len(t.to_payload()["traceEvents"]) == 2


class TestCap:
    def test_cap_drops_and_counts(self):
        t = Tracer(max_events=2)
        for ts in range(5):
            t.instant(0, 0, "x", ts=ts)
        assert len(t) == 2
        assert t.dropped == 3
        assert t.to_payload()["otherData"]["dropped_events"] == 3

    def test_metadata_exempt_from_cap(self):
        t = Tracer(max_events=1)
        t.instant(0, 0, "x", ts=0)
        t.instant(0, 0, "y", ts=1)  # dropped
        t.process_name(0, "SM 0")   # still recorded
        events = t.to_payload()["traceEvents"]
        assert [e["ph"] for e in events] == ["M", "i"]

    def test_nonpositive_cap_rejected(self):
        with pytest.raises(ValueError):
            Tracer(max_events=0)


class TestExport:
    def test_dumps_is_valid_json(self):
        t = Tracer()
        t.duration(0, 0, "LD", ts=0, dur=1)
        payload = json.loads(t.dumps({"workload": "matrixmul"}))
        assert payload["otherData"]["workload"] == "matrixmul"
        assert payload["otherData"]["dropped_events"] == 0
        assert payload["displayTimeUnit"] == "ns"

    def test_write_roundtrip(self, tmp_path):
        t = Tracer()
        t.instant(2, 7, "stall:raw", ts=42, cat="stall")
        path = tmp_path / "trace.json"
        t.write(str(path))
        loaded = json.loads(path.read_text(encoding="utf-8"))
        (event,) = loaded["traceEvents"]
        assert event["name"] == "stall:raw"
        assert (event["pid"], event["tid"], event["ts"]) == (2, 7, 42)
