"""Unit tests for the metric primitives and the registry."""

import pytest

from repro.obs.metrics import (
    Counter,
    FixedHistogram,
    Gauge,
    Histogram,
    MetricSnapshot,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    merge_snapshots,
)


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("x").value == 0

    def test_add(self):
        c = Counter("x")
        c.add()
        c.add(4)
        assert c.value == 5

    def test_cannot_decrease(self):
        with pytest.raises(ValueError):
            Counter("x").add(-1)

    def test_set_absolute(self):
        c = Counter("x", 3)
        c.set(10)
        assert c.value == 10

    def test_set_cannot_decrease(self):
        with pytest.raises(ValueError):
            Counter("x", 5).set(4)

    def test_merge(self):
        a, b = Counter("x", 3), Counter("x", 4)
        a.merge(b)
        assert a.value == 7

    def test_merge_name_mismatch(self):
        with pytest.raises(ValueError):
            Counter("x").merge(Counter("y"))


class TestGauge:
    def test_empty(self):
        g = Gauge("g")
        assert g.count == 0 and g.mean == 0.0
        assert g.min is None and g.max is None and g.value is None

    def test_samples(self):
        g = Gauge("g")
        for v in (3, 7, 5):
            g.set(v)
        assert g.value == 5          # last in-process sample
        assert g.count == 3
        assert g.total == 15
        assert (g.min, g.max) == (3, 7)
        assert g.mean == 5.0

    def test_merge_combines_aggregates(self):
        a, b = Gauge("g"), Gauge("g")
        a.set(1)
        a.set(9)
        b.set(4)
        a.merge(b)
        assert a.count == 3 and a.total == 14
        assert (a.min, a.max) == (1, 9)

    def test_merge_with_empty_is_identity(self):
        a, empty = Gauge("g"), Gauge("g")
        a.set(2)
        a.merge(empty)
        assert (a.count, a.total, a.min, a.max) == (1, 2, 2, 2)

    def test_merge_name_mismatch(self):
        with pytest.raises(ValueError):
            Gauge("a").merge(Gauge("b"))

    def test_payload_roundtrip(self):
        g = Gauge("g")
        g.set(3)
        g.set(8)
        restored = Gauge.from_payload(g.to_payload())
        assert restored.to_payload() == g.to_payload()


class TestHistogram:
    def test_empty(self):
        h = Histogram("h")
        assert h.total == 0
        assert h.fractions() == {}
        assert len(h) == 0

    def test_add_and_count(self):
        h = Histogram("h")
        h.add(3)
        h.add(3, 2)
        h.add(5)
        assert h.count(3) == 3
        assert h.count(5) == 1
        assert h.count(99) == 0
        assert h.total == 4

    def test_fractions_sum_to_one(self):
        h = Histogram("h")
        for key in (1, 2, 2, 3, 3, 3):
            h.add(key)
        fracs = h.fractions()
        assert abs(sum(fracs.values()) - 1.0) < 1e-12
        assert fracs[3] == 0.5

    def test_mean_key(self):
        h = Histogram("h")
        h.add(2, 3)
        h.add(6, 1)
        assert h.mean_key() == 3.0

    def test_merge(self):
        a, b = Histogram("h"), Histogram("h")
        a.add("x", 2)
        b.add("x", 1)
        b.add("y", 5)
        a.merge(b)
        assert a.count("x") == 3
        assert a.count("y") == 5

    def test_merge_name_mismatch(self):
        with pytest.raises(ValueError):
            Histogram("a").merge(Histogram("b"))

    def test_negative_add_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h").add(1, -1)


class TestFixedHistogram:
    def test_bucketing_inclusive_upper_bounds(self):
        h = FixedHistogram("f", (2, 5, 9))
        for v in (0, 2, 3, 5, 6, 9, 10, 99):
            h.add(v)
        # buckets: <=2, 3-5, 6-9, overflow
        assert h.counts == [2, 2, 2, 2]
        assert h.total == 8

    def test_labels(self):
        h = FixedHistogram("f", (0, 2, 5))
        assert [label for label, _ in h.items()] == ["0", "1-2", "3-5", ">5"]

    def test_bounds_must_ascend(self):
        with pytest.raises(ValueError):
            FixedHistogram("f", (3, 3))
        with pytest.raises(ValueError):
            FixedHistogram("f", ())

    def test_merge_requires_identical_bounds(self):
        a = FixedHistogram("f", (1, 2))
        b = FixedHistogram("f", (1, 3))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_preserves_total(self):
        a = FixedHistogram("f", (1, 2))
        b = FixedHistogram("f", (1, 2))
        a.add(0)
        b.add(2, 3)
        b.add(7)
        a.merge(b)
        assert a.total == 5 == sum(a.counts)

    def test_payload_roundtrip(self):
        h = FixedHistogram("f", (1, 4))
        h.add(3, 2)
        h.add(9)
        restored = FixedHistogram.from_payload(h.to_payload())
        assert restored.to_payload() == h.to_payload()
        assert restored.total == h.total


class TestMetricsRegistry:
    def test_lazy_creation(self):
        r = MetricsRegistry()
        assert r.value("nothing") == 0
        r.inc("nothing")
        assert r.value("nothing") == 1

    def test_counter_identity(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")

    def test_histogram_identity(self):
        r = MetricsRegistry()
        assert r.histogram("a") is r.histogram("a")

    def test_no_legacy_bump(self):
        # satellite: the two-spellings era (bump vs counter().add) is over
        assert not hasattr(MetricsRegistry, "bump")

    def test_observe_shorthand(self):
        r = MetricsRegistry()
        r.observe("h", 5)
        r.observe("h", 5, 2)
        assert r.histogram("h").count(5) == 3

    def test_gauge_and_sample(self):
        r = MetricsRegistry()
        r.set_gauge("g", 4)
        r.sample("f", (1, 2), 2)
        assert r.gauge("g").count == 1
        assert r.fixed_histogram("f", (1, 2)).total == 1

    def test_merge_combines_everything(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 1)
        b.inc("c", 2)
        b.inc("only_b", 9)
        b.histogram("h").add(5)
        b.set_gauge("g", 3)
        b.sample("f", (1, 2), 0)
        a.merge(b)
        assert a.value("c") == 3
        assert a.value("only_b") == 9
        assert a.histogram("h").count(5) == 1
        assert a.gauge("g").count == 1
        assert a.fixed_histogram("f", (1, 2)).total == 1

    def test_counters_snapshot_sorted(self):
        r = MetricsRegistry()
        r.inc("zeta")
        r.inc("alpha", 2)
        assert list(r.counters()) == ["alpha", "zeta"]

    def test_payload_roundtrip(self):
        r = MetricsRegistry()
        r.inc("c", 2)
        r.observe("h", "key", 3)
        r.set_gauge("g", 7)
        r.sample("f", (1, 5), 4)
        restored = MetricsRegistry.from_payload(r.to_payload())
        assert restored.to_payload() == r.to_payload()

    def test_classic_payload_without_new_kinds_loads(self):
        # counters+histograms-only payloads (the pre-obs shape) load
        r = MetricsRegistry.from_payload(
            {"counters": [["c", 1]], "histograms": []}
        )
        assert r.value("c") == 1


class TestNullRegistry:
    def test_all_writes_are_noops(self):
        r = NullRegistry()
        r.inc("c", 5)
        r.observe("h", 1)
        r.set_gauge("g", 2)
        r.sample("f", (1,), 0)
        assert r.value("c") == 0
        assert r.snapshot().is_empty

    def test_shared_instance_disabled_flag(self):
        assert NULL_REGISTRY.enabled is False
        assert MetricsRegistry().enabled is True


class TestMetricSnapshot:
    def _registry(self):
        r = MetricsRegistry()
        r.inc("c", 2)
        r.observe("h", 4)
        r.set_gauge("g", 9)
        r.sample("f", (1, 2), 1)
        return r

    def test_roundtrip_through_registry(self):
        snap = self._registry().snapshot()
        assert snap.to_registry().to_payload() == snap.to_payload()

    def test_value_accessor(self):
        snap = self._registry().snapshot()
        assert snap.value("c") == 2
        assert snap.value("missing") == 0

    def test_equality_is_canonical(self):
        assert self._registry().snapshot() == self._registry().snapshot()
        assert MetricSnapshot.empty() != self._registry().snapshot()

    def test_merge_adds(self):
        snap = self._registry().snapshot()
        merged = snap.merge(snap)
        assert merged.value("c") == 4

    def test_merge_snapshots_empty_iterable(self):
        assert merge_snapshots([]).is_empty

    def test_canonical_json_deterministic(self):
        a = self._registry().snapshot().canonical_json()
        b = self._registry().snapshot().canonical_json()
        assert a == b
