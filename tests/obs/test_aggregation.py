"""Cross-process aggregation acceptance tests.

The tentpole determinism guarantees, asserted end to end on real
simulations: a parallel suite and a parallel fault campaign must
aggregate to snapshots *byte-identical* (``canonical_json``) to their
serial runs, warm cache hits must replay the metrics they were stored
with, and the obs flag must never alias obs-off cache entries.
"""

from __future__ import annotations

import pytest

from repro.analysis.result_cache import result_key
from repro.analysis.runner import (
    SuiteRunner,
    aggregate_metrics,
    experiment_config,
)
from repro.common.config import DMRConfig, GPUConfig
from repro.faults.campaign import CampaignEngine, CampaignSpec
from repro.faults.sampler import FaultSampler
from repro.workloads import PAPER_ORDER

SCALE = 0.25


def make_runner(**kwargs) -> SuiteRunner:
    kwargs.setdefault("scale", SCALE)
    kwargs.setdefault("obs", True)
    return SuiteRunner(experiment_config(num_sms=2), **kwargs)


class TestSuiteAggregation:
    def test_parallel_suite_aggregates_byte_identical(self):
        """Acceptance: run_suite(parallel=4) merges to the serial bytes."""
        dmr = DMRConfig.paper_default()
        serial = make_runner().run_suite(dmr)
        parallel = make_runner().run_suite(dmr, parallel=4)
        expected = aggregate_metrics(serial[name] for name in PAPER_ORDER)
        actual = aggregate_metrics(parallel[name] for name in PAPER_ORDER)
        assert not expected.is_empty
        assert actual.canonical_json() == expected.canonical_json()

    def test_aggregate_carries_pipeline_metrics(self):
        results = make_runner().run_suite(DMRConfig.paper_default())
        snapshot = aggregate_metrics(results.values())
        assert snapshot.value("dmr_pair_intra") > 0
        registry = snapshot.to_registry()
        assert registry.gauge("warp_occupancy").count > 0
        occupancy = dict(registry.to_payload())["fixed_histograms"]
        assert any(h["name"] == "warp_occupancy" for h in occupancy)

    def test_obs_off_results_aggregate_to_empty(self):
        runner = make_runner(obs=False)
        results = runner.run_suite(DMRConfig.disabled())
        for result in results.values():
            assert result.obs is None
        assert aggregate_metrics(results.values()).is_empty


class TestCacheReplay:
    def test_warm_hit_replays_metrics(self, tmp_path):
        cold = make_runner(cache=tmp_path)
        first = cold.run("scan", DMRConfig.paper_default())
        assert first.obs is not None

        warm = make_runner(cache=tmp_path)
        second = warm.run("scan", DMRConfig.paper_default())
        assert warm.simulations == 0
        assert second.obs == first.obs

    def test_obs_flag_is_part_of_the_key(self):
        dmr = DMRConfig.disabled()
        config = experiment_config(num_sms=2)
        assert (result_key("scan", dmr, config, SCALE, 0, True, obs=True)
                != result_key("scan", dmr, config, SCALE, 0, True, obs=False))

    def test_obs_off_runner_never_served_an_obs_result(self, tmp_path):
        make_runner(cache=tmp_path).baseline("scan")
        plain = make_runner(cache=tmp_path, obs=False)
        result = plain.baseline("scan")
        assert plain.simulations == 1, "obs entry must not alias obs-off"
        assert result.obs is None


class TestCampaignAggregation:
    @pytest.fixture(scope="class")
    def spec(self) -> CampaignSpec:
        return CampaignSpec(workload="scan", config=GPUConfig.small(1),
                            dmr=DMRConfig.paper_default(), scale=SCALE,
                            obs=True)

    @pytest.fixture(scope="class")
    def faults(self, spec):
        horizon = CampaignEngine(spec).golden_result().cycles
        return FaultSampler(spec.config, windows=2).sample(200, horizon,
                                                           seed=3)

    def test_200_fault_campaign_parallel_byte_identical(self, spec, faults):
        """Acceptance: a 200-fault parallel campaign merges to the
        serial bytes."""
        serial = CampaignEngine(spec).run(faults)
        parallel = CampaignEngine(spec, jobs=4).run(faults)
        expected = serial.metrics()
        assert not expected.is_empty
        assert (parallel.metrics().canonical_json()
                == expected.canonical_json())

    def test_campaign_cache_replays_metrics(self, spec, faults, tmp_path):
        subset = faults[:10]
        cold = CampaignEngine(spec, cache=tmp_path)
        first = cold.run(subset).metrics()

        warm = CampaignEngine(spec, cache=tmp_path)
        second = warm.run(subset).metrics()
        assert warm.simulations == 0
        assert second.canonical_json() == first.canonical_json()

    def test_golden_baseline_stays_obs_free(self, spec, tmp_path):
        """The golden run is shared with obs-off users, so it must not
        embed a snapshot even in an obs-on campaign."""
        engine = CampaignEngine(spec, cache=tmp_path)
        assert engine.golden_result().obs is None
