"""Unit tests for configuration dataclasses (paper Table 3 values)."""

import pytest

from repro.common.config import (
    DMRConfig,
    GPUConfig,
    LaunchConfig,
    MappingPolicy,
    TransferConfig,
)
from repro.common.errors import ConfigError


class TestGPUConfigPaperBaseline:
    """Table 3: the exact simulation parameters."""

    def test_30_sms(self):
        assert GPUConfig.paper_baseline().num_sms == 30

    def test_warp_size_32(self):
        assert GPUConfig.paper_baseline().warp_size == 32

    def test_32_wide_simt(self):
        assert GPUConfig.paper_baseline().simt_width == 32

    def test_1024_threads_per_sm(self):
        assert GPUConfig.paper_baseline().max_threads_per_sm == 1024

    def test_32_register_banks(self):
        assert GPUConfig.paper_baseline().num_register_banks == 32

    def test_64kb_register_file(self):
        assert GPUConfig.paper_baseline().register_file_bytes == 64 * 1024

    def test_eight_clusters_per_warp(self):
        assert GPUConfig.paper_baseline().clusters_per_warp == 8

    def test_32_warps_per_sm(self):
        assert GPUConfig.paper_baseline().max_warps_per_sm == 32

    def test_800mhz_clock(self):
        assert GPUConfig.paper_baseline().clock_period_ns == 1.25


class TestGPUConfigValidation:
    def test_cluster_must_divide_warp(self):
        with pytest.raises(ConfigError):
            GPUConfig(cluster_size=5)

    def test_zero_sms_rejected(self):
        with pytest.raises(ConfigError):
            GPUConfig(num_sms=0)

    def test_threads_must_be_warp_multiple(self):
        with pytest.raises(ConfigError):
            GPUConfig(max_threads_per_sm=1000)

    def test_nonpositive_latency_rejected(self):
        with pytest.raises(ConfigError):
            GPUConfig(sp_latency=0)

    def test_negative_stagger_rejected(self):
        with pytest.raises(ConfigError):
            GPUConfig(warp_start_stagger=-1)

    def test_with_cluster_size(self):
        cfg = GPUConfig.paper_baseline().with_cluster_size(8)
        assert cfg.cluster_size == 8
        assert cfg.clusters_per_warp == 4

    def test_to_dict_roundtrips_values(self):
        d = GPUConfig.paper_baseline().to_dict()
        assert d["num_sms"] == 30
        assert d["scheduler"] == "rr"


class TestDMRConfig:
    def test_paper_default(self):
        dmr = DMRConfig.paper_default()
        assert dmr.enabled
        assert dmr.replayq_entries == 10
        assert dmr.mapping is MappingPolicy.CROSS
        assert dmr.lane_shuffle

    def test_disabled(self):
        assert not DMRConfig.disabled().enabled

    def test_negative_replayq_rejected(self):
        with pytest.raises(ConfigError):
            DMRConfig(replayq_entries=-1)

    def test_with_replayq(self):
        assert DMRConfig.paper_default().with_replayq(5).replayq_entries == 5

    def test_with_mapping(self):
        dmr = DMRConfig.paper_default().with_mapping(MappingPolicy.IN_ORDER)
        assert dmr.mapping is MappingPolicy.IN_ORDER


class TestLaunchConfig:
    def test_total_threads(self):
        assert LaunchConfig(grid_dim=4, block_dim=96).total_threads == 384

    def test_warps_per_block_rounds_up(self):
        assert LaunchConfig(grid_dim=1, block_dim=33).warps_per_block(32) == 2

    def test_zero_grid_rejected(self):
        with pytest.raises(ConfigError):
            LaunchConfig(grid_dim=0, block_dim=32)


class TestTransferConfig:
    def test_zero_bytes_is_free(self):
        assert TransferConfig().transfer_time_s(0) == 0.0

    def test_latency_floor(self):
        cfg = TransferConfig()
        assert cfg.transfer_time_s(4) >= cfg.latency_s

    def test_bandwidth_scaling(self):
        cfg = TransferConfig()
        small = cfg.transfer_time_s(1 << 20)
        large = cfg.transfer_time_s(1 << 24)
        assert large > small

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigError):
            TransferConfig().transfer_time_s(-1)
