"""``repro.common.stats`` is binomial-interval math only.

The counter/histogram primitives moved to :mod:`repro.obs.metrics`
(tested in ``tests/obs/``); these tests pin the slimmed-down surface so
the legacy shim cannot creep back.
"""

import pytest

import repro.common.stats as stats_module
from repro.common import binomial_interval


class TestModuleSurface:
    def test_legacy_metric_classes_are_gone(self):
        for legacy in ("StatSet", "Counter", "Histogram"):
            assert not hasattr(stats_module, legacy), (
                f"{legacy} belongs in repro.obs.metrics now"
            )

    def test_interval_registry_intact(self):
        assert set(stats_module.BINOMIAL_INTERVALS) == {
            "wilson", "clopper-pearson",
        }

    def test_package_reexports_binomial_interval(self):
        low, high = binomial_interval(9, 10)
        assert 0.0 <= low < 0.9 < high <= 1.0


class TestIntervalDispatch:
    def test_wilson_default(self):
        assert (stats_module.binomial_interval(5, 10)
                == stats_module.wilson_interval(5, 10))

    def test_clopper_pearson_by_name(self):
        assert (stats_module.binomial_interval(5, 10,
                                               method="clopper-pearson")
                == stats_module.clopper_pearson_interval(5, 10))

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            stats_module.binomial_interval(1, 2, method="wald")
