"""Unit tests for counters, histograms, and stat sets."""

import pytest

from repro.common.stats import Counter, Histogram, StatSet


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("x").value == 0

    def test_add(self):
        c = Counter("x")
        c.add()
        c.add(4)
        assert c.value == 5

    def test_cannot_decrease(self):
        with pytest.raises(ValueError):
            Counter("x").add(-1)

    def test_merge(self):
        a, b = Counter("x", 3), Counter("x", 4)
        a.merge(b)
        assert a.value == 7

    def test_merge_name_mismatch(self):
        with pytest.raises(ValueError):
            Counter("x").merge(Counter("y"))


class TestHistogram:
    def test_empty(self):
        h = Histogram("h")
        assert h.total == 0
        assert h.fractions() == {}
        assert len(h) == 0

    def test_add_and_count(self):
        h = Histogram("h")
        h.add(3)
        h.add(3, 2)
        h.add(5)
        assert h.count(3) == 3
        assert h.count(5) == 1
        assert h.count(99) == 0
        assert h.total == 4

    def test_fractions_sum_to_one(self):
        h = Histogram("h")
        for key in (1, 2, 2, 3, 3, 3):
            h.add(key)
        fracs = h.fractions()
        assert abs(sum(fracs.values()) - 1.0) < 1e-12
        assert fracs[3] == 0.5

    def test_mean_key(self):
        h = Histogram("h")
        h.add(2, 3)
        h.add(6, 1)
        assert h.mean_key() == 3.0

    def test_mean_key_empty(self):
        assert Histogram("h").mean_key() == 0.0

    def test_merge(self):
        a, b = Histogram("h"), Histogram("h")
        a.add("x", 2)
        b.add("x", 1)
        b.add("y", 5)
        a.merge(b)
        assert a.count("x") == 3
        assert a.count("y") == 5

    def test_merge_name_mismatch(self):
        with pytest.raises(ValueError):
            Histogram("a").merge(Histogram("b"))

    def test_negative_add_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h").add(1, -1)


class TestStatSet:
    def test_lazy_creation(self):
        s = StatSet()
        assert s.value("nothing") == 0
        s.bump("nothing")
        assert s.value("nothing") == 1

    def test_counter_identity(self):
        s = StatSet()
        assert s.counter("a") is s.counter("a")

    def test_histogram_identity(self):
        s = StatSet()
        assert s.histogram("a") is s.histogram("a")

    def test_merge_combines_everything(self):
        a, b = StatSet(), StatSet()
        a.bump("c", 1)
        b.bump("c", 2)
        b.bump("only_b", 9)
        b.histogram("h").add(5)
        a.merge(b)
        assert a.value("c") == 3
        assert a.value("only_b") == 9
        assert a.histogram("h").count(5) == 1

    def test_counters_snapshot_sorted(self):
        s = StatSet()
        s.bump("zeta")
        s.bump("alpha", 2)
        assert list(s.counters()) == ["alpha", "zeta"]
