"""Unit tests for active-mask bit utilities."""

import pytest

from repro.common.bitops import (
    count_active,
    first_active_lane,
    full_mask,
    is_lane_active,
    iter_active_lanes,
    iter_inactive_lanes,
    lane_slice,
    mask_from_lanes,
    popcount_below,
)


class TestFullMask:
    def test_zero_width(self):
        assert full_mask(0) == 0

    def test_warp_width(self):
        assert full_mask(32) == 0xFFFFFFFF

    def test_cluster_width(self):
        assert full_mask(4) == 0b1111

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            full_mask(-1)


class TestMaskFromLanes:
    def test_empty(self):
        assert mask_from_lanes([]) == 0

    def test_single(self):
        assert mask_from_lanes([5]) == 0b100000

    def test_multiple(self):
        assert mask_from_lanes([0, 2, 31]) == (1 | 4 | (1 << 31))

    def test_duplicates_idempotent(self):
        assert mask_from_lanes([3, 3, 3]) == 0b1000

    def test_negative_lane_rejected(self):
        with pytest.raises(ValueError):
            mask_from_lanes([-1])


class TestCountAndFind:
    def test_count_empty(self):
        assert count_active(0) == 0

    def test_count_full_warp(self):
        assert count_active(full_mask(32)) == 32

    def test_count_sparse(self):
        assert count_active(0b1010101) == 4

    def test_first_active_empty(self):
        assert first_active_lane(0) == -1

    def test_first_active_lowest(self):
        assert first_active_lane(0b1100) == 2

    def test_is_lane_active(self):
        mask = 0b0110
        assert not is_lane_active(mask, 0)
        assert is_lane_active(mask, 1)
        assert is_lane_active(mask, 2)
        assert not is_lane_active(mask, 3)


class TestIteration:
    def test_active_lanes_order(self):
        assert list(iter_active_lanes(0b10110, 5)) == [1, 2, 4]

    def test_inactive_lanes_complement(self):
        mask = 0b10110
        active = set(iter_active_lanes(mask, 5))
        inactive = set(iter_inactive_lanes(mask, 5))
        assert active | inactive == set(range(5))
        assert not active & inactive

    def test_width_bounds_iteration(self):
        # lanes beyond the width are ignored even if set
        assert list(iter_active_lanes(0b111100, 3)) == [2]


class TestSliceAndRank:
    def test_lane_slice_middle(self):
        assert lane_slice(0b11110011, start=4, width=4) == 0b1111

    def test_lane_slice_low(self):
        assert lane_slice(0b11110011, start=0, width=4) == 0b0011

    def test_popcount_below(self):
        mask = 0b101101
        assert popcount_below(mask, 0) == 0
        assert popcount_below(mask, 3) == 2
        assert popcount_below(mask, 6) == 4
