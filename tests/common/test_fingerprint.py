"""Property tests for cache-key fingerprints and result serialization.

The persistent result cache is only sound if (a) two different
configurations can never share a key, and (b) a result survives the
serialize→deserialize round trip bit-exactly.  Hypothesis searches for
counterexamples to both.
"""

from __future__ import annotations

import dataclasses
import pickle

from hypothesis import given, settings, strategies as st

from repro.analysis.result_cache import result_key
from repro.common.config import (
    DMRConfig,
    GPUConfig,
    MappingPolicy,
    SchedulerPolicy,
    config_fingerprint,
)
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.sim.gpu import KernelResult
from repro.sim.memory import GlobalMemory

from tests.conftest import build_counting_kernel, run_program

dmr_configs = st.builds(
    DMRConfig,
    enabled=st.booleans(),
    replayq_entries=st.integers(0, 20),
    mapping=st.sampled_from(list(MappingPolicy)),
    lane_shuffle=st.booleans(),
    eager_reexecution=st.booleans(),
)

gpu_configs = st.builds(
    GPUConfig,
    num_sms=st.integers(1, 4),
    cluster_size=st.sampled_from([2, 4, 8, 16, 32]),
    sp_latency=st.integers(1, 8),
    ldst_global_latency=st.integers(1, 80),
    clock_period_ns=st.sampled_from([1.0, 1.25, 2.0]),
    scheduler=st.sampled_from(list(SchedulerPolicy)),
    num_schedulers=st.sampled_from([1, 2]),
    model_bank_conflicts=st.booleans(),
    warp_start_stagger=st.integers(0, 50),
)


class TestConfigFingerprints:
    @given(a=dmr_configs, b=dmr_configs)
    def test_dmr_fingerprint_injective(self, a, b):
        assert (a.fingerprint() == b.fingerprint()) == (a == b)

    @given(a=gpu_configs, b=gpu_configs)
    @settings(max_examples=60)
    def test_gpu_fingerprint_injective(self, a, b):
        assert (a.fingerprint() == b.fingerprint()) == (a == b)

    @given(config=dmr_configs)
    def test_replace_changes_dmr_fingerprint(self, config):
        """Flipping any single field must change the key."""
        variants = {
            "enabled": not config.enabled,
            "replayq_entries": config.replayq_entries + 1,
            "mapping": (MappingPolicy.CROSS
                        if config.mapping is MappingPolicy.IN_ORDER
                        else MappingPolicy.IN_ORDER),
            "lane_shuffle": not config.lane_shuffle,
            "eager_reexecution": not config.eager_reexecution,
        }
        for field, value in variants.items():
            modified = dataclasses.replace(config, **{field: value})
            assert modified.fingerprint() != config.fingerprint(), field

    @given(config=gpu_configs)
    @settings(max_examples=30)
    def test_replace_changes_gpu_fingerprint(self, config):
        variants = {
            "num_sms": config.num_sms + 1,
            "sp_latency": config.sp_latency + 1,
            "ldst_global_latency": config.ldst_global_latency + 1,
            "warp_start_stagger": config.warp_start_stagger + 1,
            "model_bank_conflicts": not config.model_bank_conflicts,
        }
        for field, value in variants.items():
            modified = dataclasses.replace(config, **{field: value})
            assert modified.fingerprint() != config.fingerprint(), field

    def test_float_fields_keep_full_precision(self):
        a = dataclasses.replace(GPUConfig(), clock_period_ns=1.25)
        b = dataclasses.replace(GPUConfig(), clock_period_ns=1.25 + 1e-12)
        assert a.fingerprint() != b.fingerprint()

    def test_fingerprint_covers_type_name(self):
        """Two value-identical dataclasses of different types differ."""
        assert config_fingerprint(DMRConfig()) != config_fingerprint(
            {"__type__": "SomethingElse"}
        )


class TestResultKey:
    @given(dmr=dmr_configs,
           scale=st.sampled_from([0.25, 0.5, 1.0]),
           seed=st.integers(0, 5),
           check=st.booleans())
    @settings(max_examples=40)
    def test_key_covers_every_run_input(self, dmr, scale, seed, check):
        config = GPUConfig.small(2)
        base = result_key("scan", dmr, config, scale, seed, check)
        assert base != result_key("bfs", dmr, config, scale, seed, check)
        assert base != result_key("scan", dmr, config, scale / 2, seed, check)
        assert base != result_key("scan", dmr, config, scale, seed + 1, check)
        assert base != result_key("scan", dmr, config, scale, seed, not check)
        assert base != result_key(
            "scan", dmr, dataclasses.replace(config, num_sms=config.num_sms + 1),
            scale, seed, check,
        )
        assert base != result_key(
            "scan", dataclasses.replace(dmr, enabled=not dmr.enabled),
            config, scale, seed, check,
        )
        # and it is a stable function, not salted per call
        assert base == result_key("scan", dmr, config, scale, seed, check)


hist_keys = st.one_of(st.integers(-100, 100), st.text(max_size=8))


class TestSerializationRoundTrip:
    @given(bins=st.dictionaries(hist_keys, st.integers(0, 1 << 40),
                                max_size=12))
    def test_histogram_round_trip(self, bins):
        hist = Histogram("h")
        for key, count in bins.items():
            hist._bins[key] = count
        restored = Histogram.from_payload(hist.to_payload())
        assert restored.as_dict() == hist.as_dict()
        assert restored.name == hist.name

    @given(counters=st.dictionaries(st.text(min_size=1, max_size=12),
                                    st.integers(0, 1 << 40), max_size=8))
    def test_statset_round_trip(self, counters):
        stats = MetricsRegistry()
        for name, value in counters.items():
            stats.counter(name).value = value
        restored = MetricsRegistry.from_payload(stats.to_payload())
        assert restored.counters() == stats.counters()

    @given(words=st.dictionaries(st.integers(0, 1 << 20),
                                 st.one_of(st.integers(-(1 << 31), 1 << 31),
                                           st.floats(allow_nan=False)),
                                 max_size=16))
    def test_memory_round_trip(self, words):
        memory = GlobalMemory()
        for addr, value in words.items():
            memory.store(addr, value)
        restored = GlobalMemory.from_payload(memory.to_payload())
        assert restored.to_payload() == memory.to_payload()
        assert restored.size_words == memory.size_words

    def test_kernel_result_round_trip(self):
        result, _ = run_program(build_counting_kernel(), GPUConfig.small(2),
                                dmr=DMRConfig.paper_default())
        payload = result.to_payload()
        restored = KernelResult.from_payload(payload)
        assert restored.to_payload() == payload
        assert restored.cycles == result.cycles
        assert restored.stats.counters() == result.stats.counters()
        assert restored.coverage.coverage_percent == \
            result.coverage.coverage_percent
        # canonical payloads pickle to identical bytes (determinism
        # tests and the disk cache rely on this)
        assert pickle.dumps(restored.to_payload()) == pickle.dumps(payload)
