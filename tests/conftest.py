"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.common.config import DMRConfig, GPUConfig, LaunchConfig
from repro.isa.opcodes import CmpOp
from repro.kernel.builder import KernelBuilder
from repro.sim.gpu import GPU
from repro.sim.memory import GlobalMemory


@pytest.fixture
def tiny_config() -> GPUConfig:
    """One-SM chip for deterministic single-pipeline tests."""
    return GPUConfig.small(1)


@pytest.fixture
def small_config() -> GPUConfig:
    """Two-SM chip used by most integration tests."""
    return GPUConfig.small(2)


@pytest.fixture
def dmr_default() -> DMRConfig:
    return DMRConfig.paper_default()


def build_counting_kernel(iterations: int = 4) -> object:
    """A loop kernel: out[gtid] = gtid summed *iterations* times."""
    b = KernelBuilder("counting")
    i, acc, gid, addr = b.regs(4)
    p = b.pred()
    b.gtid(gid)
    b.mov(acc, 0)
    b.mov(i, 0)
    b.label("loop")
    b.iadd(acc, acc, gid)
    b.iadd(i, i, 1)
    b.setp(p, i, CmpOp.LT, iterations)
    b.bra("loop", pred=p)
    b.st_global(gid, acc)
    b.exit()
    return b.build()


def build_divergent_kernel() -> object:
    """Threads with even gtid double, odd gtid triple their id."""
    b = KernelBuilder("divergent")
    gid, t, out = b.regs(3)
    p = b.pred()
    b.gtid(gid)
    b.irem(t, gid, 2)
    b.setp(p, t, CmpOp.EQ, 0)
    b.bra("even", pred=p)
    b.imul(out, gid, 3)
    b.jmp("store")
    b.label("even")
    b.imul(out, gid, 2)
    b.label("store")
    b.st_global(gid, out)
    b.exit()
    return b.build()


def run_program(program, config: GPUConfig, grid: int = 1, block: int = 32,
                dmr: DMRConfig | None = None, memory=None,
                fault_hook=None):
    """Launch helper returning (result, memory)."""
    memory = memory or GlobalMemory()
    gpu = GPU(config, dmr=dmr or DMRConfig.disabled(), fault_hook=fault_hook)
    result = gpu.launch(
        program, LaunchConfig(grid_dim=grid, block_dim=block), memory=memory
    )
    return result, memory
