"""Hypothesis property tests on core data structures and invariants."""

import struct

from hypothesis import given, settings, strategies as st

from repro.common.bitops import (
    count_active,
    full_mask,
    iter_active_lanes,
    iter_inactive_lanes,
    lane_slice,
    mask_from_lanes,
)
from repro.core.coverage import theoretical_intra_warp_coverage
from repro.core.mapping import lane_permutation, shuffled_lane
from repro.core.rfu import RegisterForwardingUnit, priority_sequence
from repro.common.config import MappingPolicy
from repro.faults.models import flip_bit, force_bit
from repro.isa.opcodes import Opcode
from repro.sim.executor import _wrap_i32, compute_lane
from repro.isa.instruction import Instruction
from repro.isa.operands import Reg

masks32 = st.integers(0, (1 << 32) - 1)
lanes = st.lists(st.integers(0, 31), max_size=32)
i32 = st.integers(-(1 << 31), (1 << 31) - 1)


class TestBitopsProperties:
    @given(lane_set=lanes)
    def test_mask_roundtrip(self, lane_set):
        mask = mask_from_lanes(lane_set)
        assert set(iter_active_lanes(mask, 32)) == set(lane_set)

    @given(mask=masks32)
    def test_active_inactive_partition(self, mask):
        active = set(iter_active_lanes(mask, 32))
        inactive = set(iter_inactive_lanes(mask, 32))
        assert active | inactive == set(range(32))
        assert not (active & inactive)
        assert len(active) == count_active(mask)

    @given(mask=masks32)
    def test_slices_reassemble(self, mask):
        reassembled = 0
        for cluster in range(8):
            reassembled |= lane_slice(mask, 4 * cluster, 4) << (4 * cluster)
        assert reassembled == mask


class TestRFUProperties:
    @given(mask=st.integers(0, 15))
    def test_pairing_invariants_4wide(self, mask):
        pairs = RegisterForwardingUnit(4).pair_cluster(mask)
        for idle, active in pairs.items():
            assert not (mask >> idle) & 1, "verifier must be idle"
            assert (mask >> active) & 1, "target must be active"
            assert idle != active
        # every idle lane with any active candidate is put to work
        if mask not in (0, 0xF):
            idle_lanes = {l for l in range(4) if not (mask >> l) & 1}
            assert set(pairs) == idle_lanes

    @given(mask=st.integers(0, 255))
    def test_pairing_invariants_8wide(self, mask):
        pairs = RegisterForwardingUnit(8).pair_cluster(mask)
        for idle, active in pairs.items():
            assert not (mask >> idle) & 1
            assert (mask >> active) & 1

    @given(mask=masks32)
    def test_warp_pairing_stays_in_cluster(self, mask):
        pairs = RegisterForwardingUnit(4).pair_warp(mask, 32)
        for idle, active in pairs.items():
            assert idle // 4 == active // 4

    @given(mask=masks32)
    def test_verified_coverage_bounded_by_theory(self, mask):
        """Measured per-warp intra coverage never exceeds the Section
        3.3 closed form (the theory ignores the cluster restriction, so
        it is an upper bound)."""
        active = count_active(mask)
        if active == 0:
            return
        rfu = RegisterForwardingUnit(4)
        verified = count_active(rfu.verified_lanes(mask, 32))
        theory = theoretical_intra_warp_coverage(active, 32)
        assert verified / active <= theory + 1e-12

    @given(cluster=st.sampled_from([2, 4, 8, 16]),
           mux=st.integers(0, 15))
    def test_priority_sequences_are_permutations(self, cluster, mux):
        if mux >= cluster:
            return
        seq = priority_sequence(mux, cluster)
        assert sorted(seq) == list(range(cluster))
        assert seq[0] == mux


class TestMappingProperties:
    @given(policy=st.sampled_from(list(MappingPolicy)),
           cluster=st.sampled_from([2, 4, 8]))
    def test_permutation_bijective(self, policy, cluster):
        perm = lane_permutation(policy, 32, cluster)
        assert sorted(perm) == list(range(32))

    @given(lane=st.integers(0, 31), cluster=st.sampled_from([2, 4, 8]))
    def test_shuffle_moves_within_cluster(self, lane, cluster):
        target = shuffled_lane(lane, cluster)
        assert target != lane
        assert target // cluster == lane // cluster


class TestFaultProperties:
    @given(value=i32, bit=st.integers(0, 31))
    def test_flip_is_involution_int(self, value, bit):
        assert flip_bit(flip_bit(value, bit), bit) == value

    @given(value=st.floats(allow_nan=False, allow_infinity=False,
                           width=32),
           bit=st.integers(0, 31))
    def test_flip_changes_and_force_idempotent_float(self, value, bit):
        forced = force_bit(value, bit, 1)
        again = force_bit(forced, bit, 1)
        # compare the float32 bit patterns: forcing an exponent bit can
        # yield NaN, where == is unconditionally false
        assert struct.pack("<f", again) == struct.pack("<f", forced)

    @given(value=i32, bit=st.integers(0, 31))
    def test_force_sets_the_bit(self, value, bit):
        forced_one = force_bit(value, bit, 1)
        forced_zero = force_bit(value, bit, 0)
        assert ((forced_one & 0xFFFFFFFF) >> bit) & 1 == 1
        assert ((forced_zero & 0xFFFFFFFF) >> bit) & 1 == 0

    @given(value=i32, bit=st.integers(0, 31))
    def test_results_stay_in_i32_range(self, value, bit):
        for result in (flip_bit(value, bit), force_bit(value, bit, 1),
                       force_bit(value, bit, 0)):
            assert -(1 << 31) <= result < (1 << 31)


class TestALUProperties:
    @given(a=st.integers(-(1 << 40), 1 << 40))
    def test_wrap_i32_range(self, a):
        assert -(1 << 31) <= _wrap_i32(a) < (1 << 31)

    @given(a=i32, b=i32)
    def test_iadd_commutes(self, a, b):
        inst = Instruction(opcode=Opcode.IADD, dst=Reg(0),
                           srcs=(Reg(1), Reg(2)))
        assert compute_lane(inst, (a, b)) == compute_lane(inst, (b, a))

    @given(a=i32, b=i32)
    def test_results_in_range(self, a, b):
        for op in (Opcode.IADD, Opcode.ISUB, Opcode.IMUL, Opcode.AND,
                   Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR):
            inst = Instruction(opcode=op, dst=Reg(0), srcs=(Reg(1), Reg(2)))
            result = compute_lane(inst, (a, b))
            assert -(1 << 31) <= result < (1 << 31)

    @given(a=i32, b=i32)
    def test_division_identity(self, a, b):
        if b == 0:
            return
        div = Instruction(opcode=Opcode.IDIV, dst=Reg(0), srcs=(Reg(1), Reg(2)))
        rem = Instruction(opcode=Opcode.IREM, dst=Reg(0), srcs=(Reg(1), Reg(2)))
        q = compute_lane(div, (a, b))
        r = compute_lane(rem, (a, b))
        assert _wrap_i32(q * b + r) == _wrap_i32(a)

    @given(a=i32)
    def test_idempotent_min_max(self, a):
        for op in (Opcode.IMIN, Opcode.IMAX):
            inst = Instruction(opcode=op, dst=Reg(0), srcs=(Reg(1), Reg(2)))
            assert compute_lane(inst, (a, a)) == a


class TestCoverageProperties:
    @given(active=st.integers(1, 32))
    def test_coverage_in_unit_interval(self, active):
        coverage = theoretical_intra_warp_coverage(active, 32)
        assert 0.0 <= coverage <= 1.0

    @given(active=st.integers(1, 16))
    def test_full_below_half(self, active):
        assert theoretical_intra_warp_coverage(active, 32) == 1.0
