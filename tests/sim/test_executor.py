"""Unit tests for functional execution semantics."""

import math

import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import CmpOp, Opcode
from repro.isa.operands import Imm, Reg
from repro.sim.executor import compute_lane, _wrap_i32


def make(opcode, *src_values, cmp=None, offset=0):
    """Build a minimal instruction + inputs pair for compute_lane."""
    from repro.isa.opcodes import op_info
    info = op_info(opcode)
    srcs = tuple(Reg(i) for i in range(info.num_srcs))
    inst = Instruction(
        opcode=opcode,
        dst=Reg(30) if info.writes_reg else None,
        srcs=srcs,
        cmp=cmp,
        pdst=0 if info.writes_pred else None,
        psrc=0 if opcode is Opcode.SELP else None,
        offset=offset,
    )
    return compute_lane(inst, src_values)


class TestIntegerSemantics:
    def test_iadd(self):
        assert make(Opcode.IADD, 2, 3) == 5

    def test_iadd_wraps_to_signed_32bit(self):
        assert make(Opcode.IADD, 0x7FFFFFFF, 1) == -(1 << 31)

    def test_isub_negative(self):
        assert make(Opcode.ISUB, 2, 5) == -3

    def test_imul_wraps(self):
        assert make(Opcode.IMUL, 1 << 20, 1 << 20) == 0

    def test_imad(self):
        assert make(Opcode.IMAD, 3, 4, 5) == 17

    def test_idiv_truncates_toward_zero(self):
        assert make(Opcode.IDIV, 7, 2) == 3
        assert make(Opcode.IDIV, -7, 2) == -3

    def test_idiv_by_zero_is_zero(self):
        assert make(Opcode.IDIV, 5, 0) == 0

    def test_irem_sign_follows_dividend(self):
        assert make(Opcode.IREM, 7, 3) == 1
        assert make(Opcode.IREM, -7, 3) == -1

    def test_irem_by_zero_is_zero(self):
        assert make(Opcode.IREM, 5, 0) == 0

    def test_min_max(self):
        assert make(Opcode.IMIN, -2, 5) == -2
        assert make(Opcode.IMAX, -2, 5) == 5

    def test_bitwise_on_negative_operands(self):
        # -1 is all ones in two's complement
        assert make(Opcode.AND, -1, 0xF0) == 0xF0
        assert make(Opcode.OR, 0, -1) == -1
        assert make(Opcode.XOR, -1, -1) == 0

    def test_not(self):
        assert make(Opcode.NOT, 0) == -1

    def test_shl_masks_shift_amount(self):
        assert make(Opcode.SHL, 1, 33) == 2  # 33 & 31 == 1

    def test_shr_is_logical(self):
        # -1 >> 1 logically = 0x7FFFFFFF
        assert make(Opcode.SHR, -1, 1) == 0x7FFFFFFF

    def test_wrap_i32_helper(self):
        assert _wrap_i32(0x80000000) == -(1 << 31)
        assert _wrap_i32(0x7FFFFFFF) == 0x7FFFFFFF
        assert _wrap_i32(1 << 32) == 0


class TestFloatSemantics:
    def test_fadd(self):
        assert make(Opcode.FADD, 1.5, 2.25) == 3.75

    def test_ffma_single_rounding_order(self):
        assert make(Opcode.FFMA, 2.0, 3.0, 1.0) == 7.0

    def test_fabs_fneg(self):
        assert make(Opcode.FABS, -2.0) == 2.0
        assert make(Opcode.FNEG, 2.0) == -2.0

    def test_conversions(self):
        assert make(Opcode.I2F, 3) == 3.0
        assert make(Opcode.F2I, 3.9) == 3
        assert make(Opcode.F2I, -3.9) == -3

    def test_sfu_functions(self):
        assert make(Opcode.SIN, 0.0) == 0.0
        assert make(Opcode.COS, 0.0) == 1.0
        assert make(Opcode.SQRT, 4.0) == 2.0
        assert make(Opcode.RSQRT, 4.0) == 0.5
        assert make(Opcode.EXP, 0.0) == 1.0
        assert make(Opcode.LOG, math.e) == pytest.approx(1.0)

    def test_sfu_domain_clamps(self):
        assert make(Opcode.SQRT, -1.0) == 0.0
        assert make(Opcode.RSQRT, 0.0) == 0.0
        assert make(Opcode.RSQRT, -1.0) == 0.0
        assert make(Opcode.LOG, 0.0) == float("-inf")
        assert make(Opcode.EXP, 1e9) == math.exp(700.0)


class TestPredicatesAndControl:
    @pytest.mark.parametrize("cmp,a,b,expected", [
        (CmpOp.EQ, 3, 3, True), (CmpOp.EQ, 3, 4, False),
        (CmpOp.NE, 3, 4, True),
        (CmpOp.LT, -1, 0, True), (CmpOp.LE, 0, 0, True),
        (CmpOp.GT, 1, 0, True), (CmpOp.GE, -1, 0, False),
    ])
    def test_setp(self, cmp, a, b, expected):
        assert make(Opcode.SETP, a, b, cmp=cmp) is expected

    def test_setp_mixed_types_compare_as_float(self):
        assert make(Opcode.SETP, 1, 1.5, cmp=CmpOp.LT) is True

    def test_selp(self):
        assert make(Opcode.SELP, 10, 20, True) == 10
        assert make(Opcode.SELP, 10, 20, False) == 20


class TestMemoryAddressing:
    def test_load_address_is_base_plus_offset(self):
        assert make(Opcode.LD_GLOBAL, 100, offset=8) == 108

    def test_store_address(self):
        assert make(Opcode.ST_SHARED, 5, 42.0, offset=3) == 8

    def test_negative_offset(self):
        assert make(Opcode.LD_SHARED, 10, offset=-4) == 6
