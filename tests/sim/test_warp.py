"""Unit tests for warp/thread-block state."""

import pytest

from repro.common.errors import SimulationError
from repro.core.mapping import lane_permutation
from repro.common.config import MappingPolicy
from repro.sim.warp import ThreadBlock, Warp


def make_warp(block_dim=32, warp_base=0, mapping=None, warp_size=32):
    block = ThreadBlock(
        block_id=2, block_dim=block_dim, warp_size=warp_size,
        shared_words=256,
    )
    warp = Warp(
        warp_id=5,
        block=block,
        warp_base=warp_base,
        warp_size=warp_size,
        num_registers=4,
        num_predicates=2,
        lane_of_slot=mapping or list(range(warp_size)),
        grid_dim=7,
    )
    block.attach_warps([warp])
    return warp


class TestIdentity:
    def test_tid_and_gtid(self):
        warp = make_warp(block_dim=64, warp_base=32)
        assert warp.tid(0) == 32
        assert warp.gtid(0) == 2 * 64 + 32

    def test_partial_warp_live_slots(self):
        warp = make_warp(block_dim=20)
        assert warp.live_slots == 20
        assert warp.active_mask == (1 << 20) - 1

    def test_empty_warp_rejected(self):
        with pytest.raises(SimulationError):
            make_warp(block_dim=32, warp_base=32)


class TestLaneMapping:
    def test_identity_mapping_hw_mask(self):
        warp = make_warp()
        assert warp.hw_mask(0b1010) == 0b1010

    def test_cross_mapping_spreads_consecutive_threads(self):
        mapping = lane_permutation(MappingPolicy.CROSS, 32, 4)
        warp = make_warp(mapping=mapping)
        # threads 0..7 land one per cluster
        hw = warp.hw_mask(0xFF)
        clusters = [(hw >> (4 * c)) & 0xF for c in range(8)]
        assert all(bin(c).count("1") == 1 for c in clusters)

    def test_mapping_must_be_permutation(self):
        with pytest.raises(SimulationError):
            make_warp(mapping=[0] * 32)

    def test_slot_of_lane_inverse(self):
        mapping = lane_permutation(MappingPolicy.CROSS, 32, 4)
        warp = make_warp(mapping=mapping)
        for slot in range(32):
            assert warp.slot_of_lane[warp.lane_of_slot[slot]] == slot


class TestRegisters:
    def test_register_roundtrip(self):
        warp = make_warp()
        warp.write_reg(3, 2, 42)
        assert warp.read_reg(3, 2) == 42
        assert warp.read_reg(4, 2) == 0  # other slot untouched

    def test_predicate_roundtrip(self):
        warp = make_warp()
        warp.write_pred(0, 1, True)
        assert warp.read_pred(0, 1) is True
        assert warp.read_pred(1, 1) is False


class TestBarrier:
    def test_single_warp_barrier_releases_immediately(self):
        warp = make_warp()
        released = warp.block.arrive_at_barrier(warp)
        assert released
        assert not warp.barrier_blocked

    def test_two_warp_barrier(self):
        block = ThreadBlock(0, block_dim=64, warp_size=32, shared_words=64)
        warps = [
            Warp(i, block, warp_base=32 * i, warp_size=32,
                 num_registers=1, num_predicates=1,
                 lane_of_slot=list(range(32)), grid_dim=1)
            for i in range(2)
        ]
        block.attach_warps(warps)
        assert not block.arrive_at_barrier(warps[0])
        assert warps[0].barrier_blocked
        assert block.arrive_at_barrier(warps[1])
        assert not warps[0].barrier_blocked
        assert not warps[1].barrier_blocked

    def test_can_issue_respects_barrier_and_stall(self):
        warp = make_warp()
        assert warp.can_issue(0)
        warp.barrier_blocked = True
        assert not warp.can_issue(0)
        warp.barrier_blocked = False
        warp.stalled_until = 10
        assert not warp.can_issue(9)
        assert warp.can_issue(10)
