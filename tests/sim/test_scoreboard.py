"""Unit tests for the per-warp scoreboard."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.scoreboard import Scoreboard


class TestScoreboard:
    def test_no_pending_means_ready_now(self):
        sb = Scoreboard()
        assert sb.ready_cycle([0, 1], 2, [], None) == 0

    def test_raw_blocks_reader(self):
        sb = Scoreboard()
        sb.mark_reg_write(3, ready_cycle=50)
        assert sb.ready_cycle([3], None, [], None) == 50

    def test_waw_blocks_writer(self):
        sb = Scoreboard()
        sb.mark_reg_write(3, ready_cycle=50)
        assert sb.ready_cycle([], 3, [], None) == 50

    def test_unrelated_register_unblocked(self):
        sb = Scoreboard()
        sb.mark_reg_write(3, ready_cycle=50)
        assert sb.ready_cycle([4], 5, [], None) == 0

    def test_latest_writer_wins(self):
        sb = Scoreboard()
        sb.mark_reg_write(3, ready_cycle=50)
        sb.mark_reg_write(3, ready_cycle=40)  # never moves earlier
        assert sb.ready_cycle([3], None, [], None) == 50

    def test_predicate_tracking(self):
        sb = Scoreboard()
        sb.mark_pred_write(1, ready_cycle=30)
        assert sb.ready_cycle([], None, [1], None) == 30
        assert sb.ready_cycle([], None, [], 1) == 30

    def test_max_over_all_operands(self):
        sb = Scoreboard()
        sb.mark_reg_write(0, 10)
        sb.mark_reg_write(1, 20)
        sb.mark_pred_write(0, 15)
        assert sb.ready_cycle([0, 1], None, [0], None) == 20

    def test_prune_drops_completed(self):
        sb = Scoreboard()
        sb.mark_reg_write(0, 10)
        sb.mark_reg_write(1, 100)
        sb.prune(50)
        assert sb.pending_count(50) == 1
        assert sb.ready_cycle([0], None, [], None) == 0
        assert sb.ready_cycle([1], None, [], None) == 100

    def test_invalid_register_rejected(self):
        with pytest.raises(SimulationError):
            Scoreboard().mark_reg_write(-1, 5)
