"""Unit tests for warp schedulers."""

from repro.common.config import SchedulerPolicy
from repro.sim.scheduler import WarpScheduler
from repro.sim.warp import ThreadBlock, Warp


def make_warps(n):
    block = ThreadBlock(0, block_dim=32 * n, warp_size=32, shared_words=64)
    warps = [
        Warp(i, block, warp_base=32 * i, warp_size=32,
             num_registers=1, num_predicates=1,
             lane_of_slot=list(range(32)), grid_dim=1)
        for i in range(n)
    ]
    block.attach_warps(warps)
    return warps


def always_ready(warp):
    return True


class TestRoundRobin:
    def test_cycles_through_warps(self):
        warps = make_warps(3)
        sched = WarpScheduler(SchedulerPolicy.ROUND_ROBIN)
        picks = [sched.select(warps, 0, always_ready).warp_id
                 for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_unready(self):
        warps = make_warps(3)
        warps[1].barrier_blocked = True
        sched = WarpScheduler(SchedulerPolicy.ROUND_ROBIN)
        picks = [sched.select(warps, 0, always_ready).warp_id
                 for _ in range(4)]
        assert picks == [0, 2, 0, 2]

    def test_none_when_all_blocked(self):
        warps = make_warps(2)
        for warp in warps:
            warp.barrier_blocked = True
        sched = WarpScheduler(SchedulerPolicy.ROUND_ROBIN)
        assert sched.select(warps, 0, always_ready) is None

    def test_empty_list(self):
        sched = WarpScheduler(SchedulerPolicy.ROUND_ROBIN)
        assert sched.select([], 0, always_ready) is None

    def test_respects_ready_callback(self):
        warps = make_warps(2)
        sched = WarpScheduler(SchedulerPolicy.ROUND_ROBIN)
        only_one = lambda w: w.warp_id == 1
        assert sched.select(warps, 0, only_one).warp_id == 1


class TestGreedyThenOldest:
    def test_sticks_with_current_warp(self):
        warps = make_warps(3)
        sched = WarpScheduler(SchedulerPolicy.GREEDY_THEN_OLDEST)
        picks = [sched.select(warps, 0, always_ready).warp_id
                 for _ in range(4)]
        assert picks == [0, 0, 0, 0]

    def test_falls_back_to_oldest_when_greedy_stalls(self):
        warps = make_warps(3)
        sched = WarpScheduler(SchedulerPolicy.GREEDY_THEN_OLDEST)
        assert sched.select(warps, 0, always_ready).warp_id == 0
        warps[0].barrier_blocked = True
        assert sched.select(warps, 0, always_ready).warp_id == 1
        # ...and now it greedily stays on warp 1
        assert sched.select(warps, 0, always_ready).warp_id == 1
