"""Unit tests for warp schedulers."""

from repro.common.config import SchedulerPolicy
from repro.sim.scheduler import WarpScheduler, derive_scheduler_seed
from repro.sim.warp import ThreadBlock, Warp


def make_warps(n):
    block = ThreadBlock(0, block_dim=32 * n, warp_size=32, shared_words=64)
    warps = [
        Warp(i, block, warp_base=32 * i, warp_size=32,
             num_registers=1, num_predicates=1,
             lane_of_slot=list(range(32)), grid_dim=1)
        for i in range(n)
    ]
    block.attach_warps(warps)
    return warps


def always_ready(warp, cycle):
    return True


class TestRoundRobin:
    def test_cycles_through_warps(self):
        warps = make_warps(3)
        sched = WarpScheduler(SchedulerPolicy.ROUND_ROBIN)
        picks = [sched.select(warps, 0, always_ready).warp_id
                 for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_unready(self):
        warps = make_warps(3)
        warps[1].barrier_blocked = True
        sched = WarpScheduler(SchedulerPolicy.ROUND_ROBIN)
        picks = [sched.select(warps, 0, always_ready).warp_id
                 for _ in range(4)]
        assert picks == [0, 2, 0, 2]

    def test_none_when_all_blocked(self):
        warps = make_warps(2)
        for warp in warps:
            warp.barrier_blocked = True
        sched = WarpScheduler(SchedulerPolicy.ROUND_ROBIN)
        assert sched.select(warps, 0, always_ready) is None

    def test_empty_list(self):
        sched = WarpScheduler(SchedulerPolicy.ROUND_ROBIN)
        assert sched.select([], 0, always_ready) is None

    def test_respects_ready_callback(self):
        warps = make_warps(2)
        sched = WarpScheduler(SchedulerPolicy.ROUND_ROBIN)
        only_one = lambda w, c: w.warp_id == 1
        assert sched.select(warps, 0, only_one).warp_id == 1


class TestGreedyThenOldest:
    def test_sticks_with_current_warp(self):
        warps = make_warps(3)
        sched = WarpScheduler(SchedulerPolicy.GREEDY_THEN_OLDEST)
        picks = [sched.select(warps, 0, always_ready).warp_id
                 for _ in range(4)]
        assert picks == [0, 0, 0, 0]

    def test_falls_back_to_oldest_when_greedy_stalls(self):
        warps = make_warps(3)
        sched = WarpScheduler(SchedulerPolicy.GREEDY_THEN_OLDEST)
        assert sched.select(warps, 0, always_ready).warp_id == 0
        warps[0].barrier_blocked = True
        assert sched.select(warps, 0, always_ready).warp_id == 1
        # ...and now it greedily stays on warp 1
        assert sched.select(warps, 0, always_ready).warp_id == 1


class TestSeededExploration:
    """GPUMC-style stateless enumeration: seed bypasses the policy."""

    def _picks(self, seed, count=16, n=4):
        warps = make_warps(n)
        sched = WarpScheduler(SchedulerPolicy.ROUND_ROBIN, seed=seed)
        return [sched.select(warps, 0, always_ready).warp_id
                for _ in range(count)]

    def test_same_seed_replays_identically(self):
        assert self._picks(7) == self._picks(7)

    def test_different_seeds_explore_different_interleavings(self):
        sequences = {tuple(self._picks(seed)) for seed in range(8)}
        assert len(sequences) > 1

    def test_unseeded_default_is_plain_round_robin(self):
        assert self._picks(None, count=6, n=3) == [0, 1, 2, 0, 1, 2]

    def test_only_ready_warps_are_candidates(self):
        warps = make_warps(4)
        warps[2].barrier_blocked = True
        sched = WarpScheduler(SchedulerPolicy.ROUND_ROBIN, seed=11)
        picks = {sched.select(warps, 0, always_ready).warp_id
                 for _ in range(32)}
        assert 2 not in picks
        assert picks <= {0, 1, 3}

    def test_none_when_nothing_ready(self):
        warps = make_warps(2)
        for warp in warps:
            warp.barrier_blocked = True
        sched = WarpScheduler(SchedulerPolicy.ROUND_ROBIN, seed=3)
        assert sched.select(warps, 0, always_ready) is None

    def test_stalls_consume_no_decision_index(self):
        """A no-candidate cycle must not shift later decisions, so a
        schedule replays exactly regardless of stall timing."""
        warps = make_warps(3)
        reference = WarpScheduler(SchedulerPolicy.ROUND_ROBIN, seed=5)
        expected = [reference.select(warps, 0, always_ready).warp_id
                    for _ in range(8)]

        stalled = WarpScheduler(SchedulerPolicy.ROUND_ROBIN, seed=5)
        picks = []
        for i in range(8):
            if i == 3:  # interpose a cycle where nothing can issue
                assert stalled.select(warps, 0, lambda w, c: False) is None
            picks.append(stalled.select(warps, 0, always_ready).warp_id)
        assert picks == expected

    def test_derive_scheduler_seed_separates_streams(self):
        subs = {derive_scheduler_seed(42, sm_id, index)
                for sm_id in range(4) for index in range(2)}
        assert len(subs) == 8
        assert derive_scheduler_seed(None, 0, 0) is None
        assert derive_scheduler_seed(42, 1, 0) == \
            derive_scheduler_seed(42, 1, 0)
