"""Warp-level executor semantics: guards, special registers, memory."""

import pytest

from repro.common.config import MappingPolicy
from repro.isa.opcodes import CmpOp
from repro.kernel.builder import KernelBuilder

from tests.conftest import run_program
from repro.common.config import GPUConfig


class TestGuardPredicates:
    def test_guarded_store_only_where_true(self, tiny_config):
        b = KernelBuilder("guard")
        gid, t = b.regs(2)
        p = b.pred()
        b.gtid(gid)
        b.irem(t, gid, 4)
        b.setp(p, t, CmpOp.EQ, 0)
        b.st_global(gid, 1, pred=p)
        b.st_global(gid, 2, offset=64, pred=p, pred_neg=True)
        b.exit()
        _, memory = run_program(b.build(), tiny_config, block=32)
        for g in range(32):
            if g % 4 == 0:
                assert memory.load(g) == 1
                assert memory.load(64 + g) == 0
            else:
                assert memory.load(g) == 0
                assert memory.load(64 + g) == 2

    def test_guarded_alu_preserves_old_value(self, tiny_config):
        b = KernelBuilder("guard_alu")
        gid, v = b.regs(2)
        p = b.pred()
        b.gtid(gid)
        b.mov(v, 100)
        b.setp(p, gid, CmpOp.LT, 8)
        b.mov(v, 200, pred=p)
        b.st_global(gid, v)
        b.exit()
        _, memory = run_program(b.build(), tiny_config, block=32)
        for g in range(32):
            assert memory.load(g) == (200 if g < 8 else 100)

    def test_guarded_setp(self, tiny_config):
        # setp under a guard only updates predicates of guarded lanes
        b = KernelBuilder("guard_setp")
        gid, out = b.regs(2)
        p, q = b.pred(), b.pred()
        b.gtid(gid)
        b.setp(q, gid, CmpOp.GE, 0)          # q = True everywhere
        b.setp(p, gid, CmpOp.LT, 16)         # p: lower half
        b.setp(q, gid, CmpOp.LT, 0, pred=p)  # q = False only where p
        b.selp(out, 1, 0, q)
        b.st_global(gid, out)
        b.exit()
        _, memory = run_program(b.build(), tiny_config, block=32)
        for g in range(32):
            assert memory.load(g) == (0 if g < 16 else 1)


class TestSpecialRegisters:
    def test_ntid_nctaid_ctaid(self, tiny_config):
        from repro.isa.operands import SReg, SpecialReg
        b = KernelBuilder("ids")
        gid, v = b.regs(2)
        b.gtid(gid)
        b.mov(v, SReg(SpecialReg.NTID))
        b.st_global(gid, v)
        b.mov(v, SReg(SpecialReg.CTAID))
        b.st_global(gid, v, offset=256)
        b.mov(v, SReg(SpecialReg.NCTAID))
        b.st_global(gid, v, offset=512)
        b.exit()
        _, memory = run_program(b.build(), tiny_config, grid=3, block=48)
        for g in range(3 * 48):
            assert memory.load(g) == 48
            assert memory.load(256 + g) == g // 48
            assert memory.load(512 + g) == 3

    def test_laneid_reflects_mapping(self):
        from dataclasses import replace
        from repro.common.config import DMRConfig
        from repro.isa.operands import SReg, SpecialReg

        b = KernelBuilder("lanes")
        gid, v = b.regs(2)
        b.gtid(gid)
        b.mov(v, SReg(SpecialReg.LANEID))
        b.st_global(gid, v)
        b.exit()
        program = b.build()

        config = GPUConfig.small(1)
        # in-order mapping: laneid == tid within warp
        _, memory = run_program(program, config, block=32)
        assert [memory.load(g) for g in range(8)] == list(range(8))
        # cross mapping: thread j lands on lane (j%8)*4 + j//8
        dmr = DMRConfig(mapping=MappingPolicy.CROSS)
        _, memory = run_program(program, config, block=32, dmr=dmr)
        assert [memory.load(g) for g in range(4)] == [0, 4, 8, 12]


class TestMemorySemantics:
    def test_global_store_load_between_warps_of_block(self, tiny_config):
        # warp 0 writes, barrier, warp 1 reads
        b = KernelBuilder("cross_warp")
        tid, gid, v, addr = b.regs(4)
        p = b.pred()
        b.tid(tid)
        b.gtid(gid)
        b.setp(p, tid, CmpOp.LT, 32)
        b.st_shared(tid, tid, pred=p)
        b.bar()
        b.setp(p, tid, CmpOp.GE, 32)
        b.isub(addr, tid, 32, pred=p)
        b.ld_shared(v, addr, pred=p)
        b.st_global(gid, v, pred=p)
        b.exit()
        _, memory = run_program(b.build(), tiny_config, block=64)
        for t in range(32, 64):
            assert memory.load(t) == t - 32

    def test_store_then_load_same_thread(self, tiny_config):
        b = KernelBuilder("roundtrip")
        gid, v = b.regs(2)
        b.gtid(gid)
        b.imul(v, gid, 3)
        b.st_global(gid, v, offset=128)
        b.ld_global(v, gid, offset=128)
        b.iadd(v, v, 1)
        b.st_global(gid, v)
        b.exit()
        _, memory = run_program(b.build(), tiny_config, block=32)
        for g in range(32):
            assert memory.load(g) == 3 * g + 1
