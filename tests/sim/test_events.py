"""Unit tests for IssueEvent, the sim<->DMR interface record."""

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode, UnitType
from repro.isa.operands import Reg
from repro.sim.events import IssueEvent


def make(mask=0xFFFFFFFF, width=32, opcode=Opcode.FFMA):
    inst = Instruction(
        opcode=opcode, dst=Reg(0), srcs=(Reg(1), Reg(2), Reg(3)),
    )
    return IssueEvent(
        cycle=7, sm_id=1, warp_id=3, pc=12, instruction=inst,
        logical_mask=mask, hw_mask=mask, warp_width=width,
        dest_reg=0,
    )


class TestIssueEvent:
    def test_full_mask_detection(self):
        assert make(0xFFFFFFFF).is_full
        assert not make(0x7FFFFFFF).is_full

    def test_active_count(self):
        assert make(0xFFFFFFFF).active_count == 32
        assert make(0b1011).active_count == 3

    def test_full_depends_on_width(self):
        # a 16-wide warp with 16 active lanes is full
        assert make(0xFFFF, width=16).is_full
        assert not make(0xFFFF, width=32).is_full

    def test_unit_forwarding(self):
        assert make().unit is UnitType.SP
        load = Instruction(opcode=Opcode.LD_GLOBAL, dst=Reg(0),
                           srcs=(Reg(1),))
        event = IssueEvent(
            cycle=0, sm_id=0, warp_id=0, pc=0, instruction=load,
            logical_mask=1, hw_mask=1, warp_width=32,
        )
        assert event.unit is UnitType.LDST

    def test_repr_is_informative(self):
        text = repr(make(0b11))
        assert "warp=3" in text
        assert "2/32" in text
        assert "ffma" in text

    def test_lane_capture_defaults_empty(self):
        event = make()
        assert event.lane_inputs == {}
        assert event.lane_results == {}
