"""Unit tests for global and shared memory models."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.memory import GlobalMemory, SharedMemory


class TestGlobalMemory:
    def test_unwritten_reads_zero(self):
        assert GlobalMemory().load(12345) == 0

    def test_store_load_roundtrip(self):
        mem = GlobalMemory()
        mem.store(7, 3.5)
        assert mem.load(7) == 3.5

    def test_out_of_range_rejected(self):
        mem = GlobalMemory(size_words=16)
        with pytest.raises(SimulationError):
            mem.load(16)
        with pytest.raises(SimulationError):
            mem.store(-1, 0)

    def test_non_integer_address_rejected(self):
        with pytest.raises(SimulationError):
            GlobalMemory().load(1.5)

    def test_bulk_roundtrip(self):
        mem = GlobalMemory()
        mem.write_block(100, [1, 2, 3])
        assert mem.read_block(100, 3) == [1, 2, 3]

    def test_numpy_scalars_coerced(self):
        import numpy as np
        mem = GlobalMemory()
        mem.write_block(0, np.array([1.5, 2.5]))
        values = mem.read_block(0, 2)
        assert values == [1.5, 2.5]
        assert all(isinstance(v, float) for v in values)

    def test_footprint(self):
        mem = GlobalMemory()
        mem.write_block(0, [1, 2, 3])
        mem.store(0, 9)  # overwrite, not a new word
        assert mem.footprint_words == 3

    def test_zero_size_rejected(self):
        with pytest.raises(SimulationError):
            GlobalMemory(size_words=0)


class TestSharedMemory:
    def test_initially_zero(self):
        assert SharedMemory(8).load(3) == 0

    def test_roundtrip(self):
        mem = SharedMemory(8)
        mem.store(2, -5)
        assert mem.load(2) == -5

    def test_bounds(self):
        mem = SharedMemory(8)
        with pytest.raises(SimulationError):
            mem.load(8)

    def test_fill(self):
        mem = SharedMemory(8)
        mem.fill([9, 8, 7], base=2)
        assert [mem.load(i) for i in (2, 3, 4)] == [9, 8, 7]
