"""Unit and differential tests for the trace-fused megakernel engine.

The megakernel layer (``repro.sim.megakernel``) rests on a handful of
structural invariants — region boundaries at control flow / memory ops /
reconvergence targets, suffix regions for mid-run entry, copy-then-commit
fallback, and strict stash/issue lockstep.  These tests pin each
invariant directly on the region table and batcher objects, then close
the loop with full-launch payload differentials against the scalar and
per-issue vector engines.
"""

from __future__ import annotations

import pickle

import pytest

from repro.common.config import DMRConfig, GPUConfig, LaunchConfig
from repro.common.errors import SimulationError
from repro.isa.opcodes import CmpOp
from repro.kernel.builder import KernelBuilder
from repro.sim import megakernel
from repro.sim.gpu import GPU
from repro.sim.memory import GlobalMemory
from repro.sim.megakernel import (
    MAX_REGION_FAILURES,
    MIN_REGION_LEN,
    WarpBatcher,
    region_table,
)
from repro.sim.sm import SM
from repro.sim.vexec import VectorFallback

from tests.conftest import build_counting_kernel, build_divergent_kernel


def launch(program, engine, *, grid=1, block=32, num_sms=1, dmr=None,
           listener=None):
    gpu = GPU(GPUConfig.small(num_sms), dmr=dmr or DMRConfig.disabled(),
              engine=engine)
    memory = GlobalMemory()
    result = gpu.launch(
        program, LaunchConfig(grid_dim=grid, block_dim=block),
        memory=memory, issue_listener=listener,
    )
    return result


def payload(result) -> bytes:
    """Byte-comparable image of everything a run can observably produce."""
    return pickle.dumps((result.memory.to_payload(), result.stats.to_payload(),
                         result.cycles, result.per_sm_cycles,
                         result.detections))


def make_sm(program, *, block_ids=(0,), grid=1, block=32, engine="mega",
            fault_hook=None):
    config = GPUConfig.small(1)
    return SM(
        sm_id=0,
        config=config,
        program=program,
        launch=LaunchConfig(grid_dim=grid, block_dim=block),
        block_ids=list(block_ids),
        global_memory=GlobalMemory(),
        lane_of_slot=list(range(config.warp_size)),
        engine=engine,
        fault_hook=fault_hook,
    )


def build_straightline(name="straight"):
    """pc0..pc2 fusable ALU run, then a store + exit boundary."""
    b = KernelBuilder(name)
    gid, a, c = b.regs(3)
    b.gtid(gid)           # 0
    b.iadd(a, gid, 1)     # 1
    b.imul(c, a, 2)       # 2
    b.st_global(gid, c)   # 3
    b.exit()              # 4
    return b.build()


def build_join_kernel():
    """A predicated skip whose join lands mid-ALU-run (reconv target pc4)."""
    b = KernelBuilder("join")
    gid, x, y = b.regs(3)
    p = b.pred()
    b.gtid(gid)                      # 0
    b.setp(p, gid, CmpOp.LT, 16)     # 1
    b.bra("skip", pred=p)            # 2
    b.iadd(x, gid, 1)                # 3
    b.label("skip")
    b.iadd(y, gid, 5)                # 4  <- reconvergence target
    b.imul(y, y, 2)                  # 5
    b.st_global(gid, y)              # 6
    b.exit()                         # 7
    return b.build()


class TestRegionTable:
    def test_run_bounded_by_memory_and_exit(self):
        table = region_table(build_straightline())
        assert set(table) == {0, 1}
        assert table[0].start == 0 and table[0].end == 3
        assert len(table[0].entries) == 3

    def test_suffix_regions_share_the_run_tail(self):
        # a warp branching into pc1 must still fuse the [1, 3) tail
        table = region_table(build_straightline())
        assert table[1].start == 1 and table[1].end == 3
        assert table[1].entries == table[0].entries[1:]

    def test_min_region_len_suppresses_singletons(self):
        b = KernelBuilder("singleton")
        gid, a = b.regs(2)
        b.gtid(gid)           # 0 } run of 2 -> region
        b.iadd(a, gid, 1)     # 1 }
        b.st_global(gid, a)   # 2 boundary
        b.imul(a, a, 2)       # 3 lone fusable run
        b.st_global(gid, a)   # 4 boundary
        b.exit()
        table = region_table(b.build())
        assert 0 in table
        assert 3 not in table, "1-instruction runs are not worth a region"
        assert MIN_REGION_LEN == 2

    def test_reconvergence_target_bounds_but_may_start_a_region(self):
        program = build_join_kernel()
        reconv = set(program.reconvergence.values())
        assert 4 in reconv, "kernel must reconverge at the join pc"
        table = region_table(program)
        # the join may START a region (the mask pop happens before the
        # fuse attempt) ...
        assert table[4].start == 4 and table[4].end == 6
        # ... but no region may CONTAIN it: advancing into the join pops
        # the SIMT stack, changing the mask mid-region
        for region in table.values():
            assert not (region.start < 4 < region.end), repr(region)
        # pc3 is a fusable singleton cut short by the join
        assert 3 not in table

    def test_out_of_int64_immediate_is_excluded(self):
        b = KernelBuilder("bigimm")
        gid, a, c = b.regs(3)
        b.gtid(gid)             # 0
        b.iadd(a, gid, 1)       # 1
        b.iadd(c, a, 1 << 70)   # 2: immediate cannot enter an int64 array
        b.iadd(c, c, 1)         # 3
        b.st_global(gid, c)     # 4
        b.exit()
        table = b.build()
        table = region_table(table)
        for region in table.values():
            assert not (region.start <= 2 < region.end), repr(region)
        assert 0 in table and table[0].end == 2

    def test_control_flow_bounds_regions(self):
        table = region_table(build_counting_kernel(iterations=4))
        for region in table.values():
            for entry in region.entries:
                assert entry.fn is not None


class TestStashLockstep:
    def test_stash_consumption_and_exhaustion(self):
        program = build_straightline()
        sm = make_sm(program)
        batcher = WarpBatcher([sm]).attach()
        warp = sm._resident_warps[0]
        full = warp.stack.current_mask
        stash = batcher.try_fuse(warp, 0, program.instructions[0])
        assert stash is not None and warp.mega_stash is stash
        assert len(stash.masks) == 3
        for pc in range(3):
            mask = sm.executor.consume_stash_mask(
                warp, stash, program.instructions[pc], pc)
            assert mask == full, "unguarded region: full SIMT mask per issue"
        assert warp.mega_stash is None, "stash clears on its last entry"

    def test_desync_raises_and_clears_the_stash(self):
        program = build_straightline()
        sm = make_sm(program)
        batcher = WarpBatcher([sm]).attach()
        warp = sm._resident_warps[0]
        stash = batcher.try_fuse(warp, 0, program.instructions[0])
        sm.executor.consume_stash_mask(warp, stash, program.instructions[0], 0)
        # replaying pc0 when the stash expects pc1 must be loud, never a
        # silent functional skew
        with pytest.raises(SimulationError, match="stash desync"):
            sm.executor.consume_stash_mask(
                warp, stash, program.instructions[0], 0)
        assert warp.mega_stash is None

    def test_cross_sm_batch_groups_every_matching_peer(self):
        program = build_straightline()
        sm0 = make_sm(program, block_ids=(0,), grid=2, block=64)
        sm1 = make_sm(program, block_ids=(1,), grid=2, block=64)
        batcher = WarpBatcher([sm0, sm1]).attach()
        warp = sm0._resident_warps[0]
        stash = batcher.try_fuse(warp, 0, program.instructions[0])
        assert stash is not None
        # 2 warps per SM x 2 SMs, all at pc0 with the same mask
        assert batcher.fused_regions == 1
        assert batcher.fused_warps == 4
        for sm in (sm0, sm1):
            for peer in sm._resident_warps:
                assert peer.mega_stash is not None


class TestFallbackPoisoning:
    def test_region_disabled_after_repeated_fallbacks(self, monkeypatch):
        program = build_straightline()
        sm = make_sm(program)
        batcher = WarpBatcher([sm]).attach()
        warp = sm._resident_warps[0]
        calls = []

        def boom(region, warps, mask):
            calls.append(region.start)
            raise VectorFallback("forced")

        monkeypatch.setattr(megakernel, "execute_region", boom)
        region = region_table(program)[0]
        for attempt in range(1, MAX_REGION_FAILURES + 1):
            assert batcher.try_fuse(warp, 0, program.instructions[0]) is None
            assert region.failures == attempt
        assert not region.enabled
        # a poisoned region stops trying: no further execute_region calls
        assert batcher.try_fuse(warp, 0, program.instructions[0]) is None
        assert len(calls) == MAX_REGION_FAILURES
        assert warp.mega_stash is None

    def test_launch_survives_total_fallback_bit_identically(self, monkeypatch):
        """With every fuse attempt failing, mega must degrade to the
        per-issue engines and still match scalar byte for byte."""
        monkeypatch.setattr(
            megakernel, "execute_region",
            lambda region, warps, mask: (_ for _ in ()).throw(
                VectorFallback("forced")))
        program = build_counting_kernel(iterations=3)
        assert payload(launch(program, "mega")) == \
            payload(launch(program, "scalar"))


class TestFusionGating:
    def test_dmr_blocks_fusion(self):
        sm = make_sm(build_straightline())
        assert sm.fusion_allowed()
        sm.dmr = object()
        assert not sm.fusion_allowed()

    def test_issue_listener_blocks_fusion(self):
        sm = make_sm(build_straightline())
        sm.add_issue_listener(lambda event: None)
        assert not sm.fusion_allowed()

    def test_fault_hook_blocks_fusion(self):
        sm = make_sm(build_straightline(),
                     fault_hook=lambda *args, **kwargs: None)
        assert not sm.fusion_allowed()

    def test_non_fusing_engines_block_fusion(self):
        for engine in ("scalar", "vector"):
            sm = make_sm(build_straightline(), engine=engine)
            assert not sm.fusion_allowed(), engine

    def test_gated_launch_matches_scalar_under_dmr(self):
        program = build_divergent_kernel()
        dmr = DMRConfig.paper_default()
        assert payload(launch(program, "mega", dmr=dmr)) == \
            payload(launch(program, "scalar", dmr=dmr))


def build_predicated_kernel():
    b = KernelBuilder("predicated")
    gid, t, lo, hi, out = b.regs(5)
    p = b.pred()
    b.gtid(gid)
    b.irem(t, gid, 3)
    b.setp(p, t, CmpOp.EQ, 1)
    b.imul(lo, gid, 7)
    b.iadd(hi, gid, 100)
    b.selp(out, hi, lo, p)
    b.st_global(gid, out)
    b.exit()
    return b.build()


class TestEngineDifferential:
    KERNELS = {
        "loop": (build_counting_kernel, dict(grid=1, block=32)),
        "divergent": (build_divergent_kernel, dict(grid=1, block=32)),
        "predicated": (build_predicated_kernel, dict(grid=1, block=32)),
        "partial_warp": (build_divergent_kernel, dict(grid=1, block=20)),
        "multi_sm": (build_counting_kernel,
                     dict(grid=4, block=64, num_sms=2)),
    }

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_mega_matches_scalar_and_vector(self, name):
        build, kwargs = self.KERNELS[name]
        golden = payload(launch(build(), "scalar", **kwargs))
        assert payload(launch(build(), "mega", **kwargs)) == golden
        assert payload(launch(build(), "vector", **kwargs)) == golden

    def test_auto_engine_is_mega(self):
        program = build_predicated_kernel()
        assert payload(launch(program, "auto")) == \
            payload(launch(program, "mega"))
