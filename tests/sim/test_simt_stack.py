"""Unit tests for the SIMT reconvergence stack."""

import pytest

from repro.common.bitops import full_mask
from repro.common.errors import SimulationError
from repro.kernel.cfg import EXIT_NODE
from repro.sim.simt_stack import SIMTStack


class TestBasics:
    def test_initial_state(self):
        stack = SIMTStack(full_mask(4))
        assert stack.current_pc == 0
        assert stack.current_mask == 0b1111
        assert not stack.done
        assert stack.depth == 1

    def test_empty_mask_rejected(self):
        with pytest.raises(SimulationError):
            SIMTStack(0)

    def test_advance(self):
        stack = SIMTStack(full_mask(2))
        stack.advance()
        assert stack.current_pc == 1

    def test_jump(self):
        stack = SIMTStack(full_mask(2))
        stack.jump(10)
        assert stack.current_pc == 10

    def test_thread_exit_all(self):
        stack = SIMTStack(full_mask(4))
        stack.thread_exit(0b1111)
        assert stack.done


class TestUniformBranches:
    def test_none_taken_falls_through(self):
        stack = SIMTStack(full_mask(4))
        stack.jump(5)
        stack.branch(0, target=9, fallthrough_pc=6, reconvergence_pc=8)
        assert stack.current_pc == 6
        assert stack.depth == 1

    def test_all_taken_jumps(self):
        stack = SIMTStack(full_mask(4))
        stack.jump(5)
        stack.branch(0b1111, target=9, fallthrough_pc=6, reconvergence_pc=12)
        assert stack.current_pc == 9
        assert stack.depth == 1


class TestDivergence:
    def test_not_taken_executes_first(self):
        stack = SIMTStack(full_mask(4))
        stack.jump(5)
        stack.branch(0b0011, target=9, fallthrough_pc=6, reconvergence_pc=12)
        assert stack.current_pc == 6           # fall-through side first
        assert stack.current_mask == 0b1100    # the not-taken lanes

    def test_taken_side_after_not_taken_pops(self):
        stack = SIMTStack(full_mask(4))
        stack.jump(5)
        stack.branch(0b0011, target=9, fallthrough_pc=6, reconvergence_pc=12)
        # not-taken block runs 6..8 then jumps over the taken block to
        # the reconvergence point, popping its entry
        stack.advance()  # 7
        stack.advance()  # 8
        stack.jump(12)
        assert stack.current_pc == 9
        assert stack.current_mask == 0b0011    # taken side now

    def test_full_reconvergence_restores_mask(self):
        stack = SIMTStack(full_mask(4))
        stack.jump(5)
        stack.branch(0b0011, target=9, fallthrough_pc=6, reconvergence_pc=12)
        stack.jump(12)      # not-taken side done
        stack.advance()     # taken side 9 -> 10
        stack.advance()     # 10 -> 11
        stack.advance()     # 11 -> 12: pops, reconverged
        assert stack.current_pc == 12
        assert stack.current_mask == 0b1111
        assert stack.depth == 1

    def test_taken_mask_must_be_subset(self):
        stack = SIMTStack(0b0011)
        with pytest.raises(SimulationError):
            stack.branch(0b0100, target=2, fallthrough_pc=1,
                         reconvergence_pc=3)

    def test_exit_node_reconvergence_splits_for_good(self):
        stack = SIMTStack(full_mask(4))
        stack.branch(0b0011, target=9, fallthrough_pc=1,
                     reconvergence_pc=EXIT_NODE)
        assert stack.current_pc == 1
        assert stack.current_mask == 0b1100
        stack.thread_exit(0b1100)
        assert stack.current_pc == 9
        assert stack.current_mask == 0b0011
        stack.thread_exit(0b0011)
        assert stack.done


class TestLoopDivergence:
    """The cascading-pop regression: threads leaving a loop at different
    trip counts must all reconverge at the loop exit."""

    def test_staggered_loop_exit(self):
        # Loop body at pc 1..3, branch at 3 -> target 1, reconv (exit) 4.
        stack = SIMTStack(full_mask(4))
        stack.advance()  # pc 1
        trip = {0: 1, 1: 2, 2: 2, 3: 4}  # per-thread trip counts
        iteration = 0
        guard = 0
        while stack.current_pc != 4:
            guard += 1
            assert guard < 100, "loop divergence failed to converge"
            if stack.current_pc in (1, 2):
                stack.advance()
                continue
            assert stack.current_pc == 3
            iteration += 1
            mask = stack.current_mask
            taken = 0
            for lane in range(4):
                if (mask >> lane) & 1 and trip[lane] > iteration:
                    taken |= 1 << lane
            stack.branch(taken, target=1, fallthrough_pc=4,
                         reconvergence_pc=4)
        assert stack.current_mask == 0b1111
        assert stack.depth == 1

    def test_nested_divergence_inside_loop(self):
        stack = SIMTStack(full_mask(4))
        # outer divergence at pc 0: lanes 0,1 take pc 10, lanes 2,3 at 1
        stack.branch(0b0011, target=10, fallthrough_pc=1,
                     reconvergence_pc=20)
        assert (stack.current_pc, stack.current_mask) == (1, 0b1100)
        # inner divergence on the not-taken side
        stack.branch(0b0100, target=5, fallthrough_pc=2,
                     reconvergence_pc=7)
        assert (stack.current_pc, stack.current_mask) == (2, 0b1000)
        stack.jump(7)   # inner not-taken reaches inner reconv -> pops
        assert (stack.current_pc, stack.current_mask) == (5, 0b0100)
        stack.jump(7)   # inner taken reaches reconv
        assert (stack.current_pc, stack.current_mask) == (7, 0b1100)
        stack.jump(20)  # outer not-taken side done
        assert (stack.current_pc, stack.current_mask) == (10, 0b0011)
        stack.jump(20)  # outer taken side done
        assert (stack.current_pc, stack.current_mask) == (20, 0b1111)
        assert stack.depth == 1
