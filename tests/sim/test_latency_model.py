"""Latency-model tests: the configured unit latencies must matter."""

from dataclasses import replace

from repro.common.config import GPUConfig
from repro.kernel.builder import KernelBuilder

from tests.conftest import run_program


def chain_kernel(op_emit, length=10):
    """A serial dependence chain of *length* ops built by *op_emit*."""
    b = KernelBuilder("chain")
    gid, v = b.regs(2)
    b.gtid(gid)
    b.mov(v, 1.0)
    for _ in range(length):
        op_emit(b, v)
    b.st_global(gid, v)
    b.exit()
    return b.build()


class TestUnitLatencies:
    def test_sfu_chain_slower_than_sp_chain(self, tiny_config):
        sp = chain_kernel(lambda b, v: b.fadd(v, v, 1.0))
        sfu = chain_kernel(lambda b, v: b.sqrt(v, v))
        sp_result, _ = run_program(sp, tiny_config, block=32)
        sfu_result, _ = run_program(sfu, tiny_config, block=32)
        assert sfu_result.cycles > sp_result.cycles

    def test_global_load_chain_slower_than_shared(self, tiny_config):
        def make(loader):
            b = KernelBuilder("loads")
            gid, v = b.regs(2)
            b.gtid(gid)
            b.mov(v, 0)
            for _ in range(6):
                loader(b, v)  # v = mem[v]: serial pointer chase
            b.st_global(gid, v, offset=4096)
            b.exit()
            return b.build()

        global_chain = make(lambda b, v: b.ld_global(v, v))
        shared_chain = make(lambda b, v: b.ld_shared(v, v))
        g_result, _ = run_program(global_chain, tiny_config, block=32)
        s_result, _ = run_program(shared_chain, tiny_config, block=32)
        assert g_result.cycles > s_result.cycles

    def test_longer_global_latency_slows_kernel(self):
        def pointer_chase():
            b = KernelBuilder("chase")
            gid, v = b.regs(2)
            b.gtid(gid)
            b.mov(v, 0)
            for _ in range(5):
                b.ld_global(v, v)
            b.st_global(gid, v, offset=64)
            b.exit()
            return b.build()

        fast = GPUConfig.small(1)
        slow = replace(fast, ldst_global_latency=200)
        fast_result, _ = run_program(pointer_chase(), fast, block=32)
        slow_result, _ = run_program(pointer_chase(), slow, block=32)
        assert slow_result.cycles > fast_result.cycles + 100

    def test_latency_hidden_by_other_warps(self, tiny_config):
        """More resident warps hide global-load latency: cycles grow
        sublinearly with warp count."""
        b = KernelBuilder("hide")
        gid, v = b.regs(2)
        b.gtid(gid)
        b.ld_global(v, gid)
        b.fadd(v, v, 1.0)
        b.st_global(gid, v, offset=2048)
        b.exit()
        program = b.build()
        one, _ = run_program(program, tiny_config, block=32)
        eight, _ = run_program(program, tiny_config, block=256)
        assert eight.cycles < 8 * one.cycles