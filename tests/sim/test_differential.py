"""Differential tests: warp (SIMT) execution vs scalar per-thread runs.

Hypothesis generates random *structured* programs — arithmetic, nested
if/else on data-dependent predicates, and bounded loops — compiles them
once, and executes them both on the simulator (with its SIMT stack,
masks and reconvergence) and on the scalar reference interpreter.  The
final global-memory images must be identical.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings, strategies as st

from repro.common.config import DMRConfig, GPUConfig, LaunchConfig
from repro.isa.opcodes import CmpOp, Opcode
from repro.kernel.builder import KernelBuilder
from repro.sim.gpu import GPU
from repro.sim.memory import GlobalMemory

from tests.scalar_reference import run_scalar_block

NUM_REGS = 6  # r0..r5 scratch; program stores them all at the end

_ALU_OPS = [
    Opcode.IADD, Opcode.ISUB, Opcode.IMUL, Opcode.AND,
    Opcode.OR, Opcode.XOR, Opcode.IMIN, Opcode.IMAX,
]
_CMPS = [CmpOp.EQ, CmpOp.NE, CmpOp.LT, CmpOp.LE, CmpOp.GT, CmpOp.GE]


# ---------------------------------------------------------------------------
# Random structured-program AST
# ---------------------------------------------------------------------------
def _alu_stmt():
    return st.tuples(
        st.just("alu"),
        st.sampled_from(_ALU_OPS),
        st.integers(0, NUM_REGS - 1),                 # dst
        st.integers(0, NUM_REGS - 1),                 # src reg
        st.one_of(st.integers(0, NUM_REGS - 1).map(lambda r: ("reg", r)),
                  st.integers(-7, 13).map(lambda v: ("imm", v))),
    )


def _block(depth: int):
    stmt = _alu_stmt()
    if depth > 0:
        stmt = st.one_of(
            _alu_stmt(),
            st.tuples(
                st.just("if"),
                st.integers(0, NUM_REGS - 1),         # condition register
                st.sampled_from(_CMPS),
                st.integers(-3, 9),                   # compared immediate
                st.deferred(lambda: _block(depth - 1)),   # then
                st.deferred(lambda: _block(depth - 1)),   # else
            ),
            st.tuples(
                st.just("loop"),
                st.integers(1, 3),                    # trip count
                st.deferred(lambda: _block(depth - 1)),
            ),
        )
    return st.lists(stmt, min_size=1, max_size=4)


programs = _block(depth=2)


# ---------------------------------------------------------------------------
# AST -> kernel
# ---------------------------------------------------------------------------
def compile_ast(ast) -> object:
    builder = KernelBuilder("fuzz")
    regs = builder.regs(NUM_REGS)
    # one loop counter per nesting depth: nested loops must not share a
    # counter or an inner reset can make the outer loop spin forever
    loop_counters = builder.regs(4)
    gid = builder.reg()
    pred = builder.pred()
    labels = itertools.count()

    builder.gtid(gid)
    # seed scratch registers with thread-dependent values
    for i, reg in enumerate(regs):
        builder.imad(reg, gid, i + 1, 3 * i - 4)

    def emit_operand(spec):
        kind, value = spec
        return regs[value] if kind == "reg" else value

    def emit_block(stmts, depth):
        for stmt in stmts:
            if stmt[0] == "alu":
                _, op, dst, src, other = stmt
                builder._alu(op, regs[dst], regs[src], emit_operand(other))
            elif stmt[0] == "if":
                _, creg, cmp, imm, then_ops, else_ops = stmt
                n = next(labels)
                builder.setp(pred, regs[creg], cmp, imm)
                builder.bra(f"else_{n}", pred=pred, neg=True)
                emit_block(then_ops, depth + 1)
                builder.jmp(f"end_{n}")
                builder.label(f"else_{n}")
                emit_block(else_ops, depth + 1)
                builder.label(f"end_{n}")
            elif stmt[0] == "loop":
                _, trips, body = stmt
                n = next(labels)
                counter = loop_counters[depth]
                builder.mov(counter, 0)
                builder.label(f"top_{n}")
                emit_block(body, depth + 1)
                builder.iadd(counter, counter, 1)
                builder.setp(pred, counter, CmpOp.LT, trips)
                builder.bra(f"top_{n}", pred=pred)

    emit_block(ast, 0)
    # store every scratch register to a thread-private output slab
    out = builder.reg()
    for i, reg in enumerate(regs):
        builder.imad(out, gid, NUM_REGS, i)
        builder.st_global(out, reg)
    builder.exit()
    return builder.build()


# ---------------------------------------------------------------------------
# The differential property
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(ast=programs)
def test_simt_execution_matches_scalar_reference(ast):
    program = compile_ast(ast)
    block_dim = 32
    grid_dim = 2

    simulated = GlobalMemory()
    gpu = GPU(GPUConfig.small(2), dmr=DMRConfig.disabled())
    gpu.launch(program, LaunchConfig(grid_dim, block_dim), memory=simulated)

    reference: dict = {}
    for block in range(grid_dim):
        run_scalar_block(program, block, block_dim, grid_dim, reference)

    for gtid in range(grid_dim * block_dim):
        for reg in range(NUM_REGS):
            addr = gtid * NUM_REGS + reg
            assert simulated.load(addr) == reference.get(addr, 0), (
                f"mismatch at thread {gtid} r{reg}\n"
                f"program:\n{program.disassemble()}"
            )


@settings(max_examples=20, deadline=None)
@given(ast=programs)
def test_warped_dmr_never_changes_results(ast):
    """DMR is an observer: architectural state must be bit-identical."""
    program = compile_ast(ast)
    plain = GlobalMemory()
    GPU(GPUConfig.small(1), dmr=DMRConfig.disabled()).launch(
        program, LaunchConfig(1, 32), memory=plain
    )
    with_dmr = GlobalMemory()
    GPU(GPUConfig.small(1), dmr=DMRConfig.paper_default()).launch(
        program, LaunchConfig(1, 32), memory=with_dmr
    )
    for gtid in range(32):
        for reg in range(NUM_REGS):
            addr = gtid * NUM_REGS + reg
            assert plain.load(addr) == with_dmr.load(addr)
