"""Tests for the dual-scheduler SM (paper Section 2.2, Fermi-style)."""

from dataclasses import replace

import pytest

from repro.common.config import DMRConfig, GPUConfig, LaunchConfig
from repro.common.errors import ConfigError
from repro.kernel.builder import KernelBuilder
from repro.sim.gpu import GPU
from repro.sim.memory import GlobalMemory

from tests.conftest import build_counting_kernel, run_program


def dual_config(**kw) -> GPUConfig:
    return replace(GPUConfig.small(1), num_schedulers=2, **kw)


class TestConfig:
    def test_three_schedulers_rejected(self):
        with pytest.raises(ConfigError):
            GPUConfig(num_schedulers=3)

    def test_paper_baseline_is_single(self):
        assert GPUConfig.paper_baseline().num_schedulers == 1


class TestDualIssue:
    def test_functional_identity(self):
        program = build_counting_kernel(iterations=4)
        _, single_mem = run_program(program, GPUConfig.small(1),
                                    grid=2, block=64)
        _, dual_mem = run_program(program, dual_config(), grid=2, block=64)
        for g in range(128):
            assert single_mem.load(g) == dual_mem.load(g)

    def test_dual_issue_speeds_up_occupied_sm(self):
        program = build_counting_kernel(iterations=12)
        single, _ = run_program(program, GPUConfig.small(1),
                                grid=8, block=64)
        dual, _ = run_program(program, dual_config(), grid=8, block=64)
        assert dual.cycles < single.cycles
        assert dual.stats.value("dual_issue_cycles") > 0

    def test_shared_unit_conflicts_counted(self):
        # back-to-back independent loads: both schedulers contend for
        # the shared LD/ST units
        b = KernelBuilder("loady")
        gid = b.reg()
        vals = b.regs(16)
        acc = b.reg()
        b.gtid(gid)
        for i, v in enumerate(vals):
            b.ld_global(v, gid, offset=i)
        b.mov(acc, 0)
        for v in vals:
            b.iadd(acc, acc, v)
        b.st_global(gid, acc, offset=64)
        b.exit()
        result, _ = run_program(
            b.build(), replace(dual_config(), warp_start_stagger=0),
            grid=4, block=64,
        )
        assert result.stats.value("dual_issue_conflicts") > 0

    def test_sp_plus_sp_co_issues(self):
        # pure-SP kernel: both schedulers own SP groups, so dual issue
        # should happen freely
        b = KernelBuilder("spspin")
        gid, a = b.regs(2)
        b.gtid(gid)
        b.mov(a, 1)
        for _ in range(24):
            b.iadd(a, a, 3)
        b.st_global(gid, a)
        b.exit()
        result, _ = run_program(b.build(), dual_config(), grid=4, block=64)
        assert result.stats.value("dual_issue_cycles") > 0

    def test_single_warp_cannot_dual_issue(self):
        # one warp belongs to one parity class: never two issues/cycle
        program = build_counting_kernel(iterations=4)
        result, _ = run_program(program, dual_config(), grid=1, block=32)
        assert result.stats.value("dual_issue_cycles") == 0


class TestDualSchedulerWithDMR:
    def test_dmr_correct_under_dual_issue(self):
        program = build_counting_kernel(iterations=6)
        memory = GlobalMemory()
        gpu = GPU(dual_config(), dmr=DMRConfig.paper_default())
        result = gpu.launch(
            program, LaunchConfig(grid_dim=4, block_dim=64), memory=memory
        )
        for g in range(4 * 64):
            assert memory.load(g) == 6 * g
        # everything still verified
        assert result.coverage.coverage >= 0.999

    def test_dmr_overhead_sane_under_both_scheduler_counts(self):
        """Section 2.2 notes dual schedulers change (without
        eliminating) heterogeneous-unit idleness; Warped-DMR must keep
        working with a bounded overhead either way.  (Empirically the
        two configurations land within a few percent of each other on
        this SP-heavy kernel: dual issue also doubles the Replay
        Checker's pairing opportunities per cycle.)"""
        program = build_counting_kernel(iterations=12)

        def overhead(config):
            base, _ = run_program(program, config, grid=8, block=64)
            dmr, _ = run_program(program, config, grid=8, block=64,
                                 dmr=DMRConfig.paper_default())
            return dmr.cycles / base.cycles

        single = overhead(GPUConfig.small(1))
        dual = overhead(dual_config())
        assert 1.0 <= single <= 2.2
        assert 1.0 <= dual <= 2.2
        assert abs(dual - single) < 0.5
