"""Differential tests over the full workload suite.

Each of the 11 paper workloads runs through the cycle-level SIMT
simulator and through the barrier-synchronous scalar reference
interpreter; the kernel outputs must match exactly.  Parameterizing the
simulator side over mapping policy and ReplayQ size pins down the
semantics under every timing-relevant DMR knob — a parallel-execution
or cache regression that altered architectural results would surface
here before any figure drifted.
"""

from __future__ import annotations

import pytest

from repro.common.config import DMRConfig, MappingPolicy
from repro.sim.gpu import GPU
from repro.sim.memory import GlobalMemory
from repro.workloads import all_workloads, get_workload

from tests.conftest import build_counting_kernel
from tests.scalar_reference import run_scalar_block

from repro.analysis.runner import experiment_config

SCALE = 0.25
SEED = 0

DMR_VARIANTS = [
    pytest.param(None, id="no_dmr"),
    pytest.param(DMRConfig(mapping=MappingPolicy.CROSS, replayq_entries=10),
                 id="cross_q10"),
    pytest.param(DMRConfig(mapping=MappingPolicy.CROSS, replayq_entries=0),
                 id="cross_q0"),
    pytest.param(DMRConfig(mapping=MappingPolicy.IN_ORDER,
                           replayq_entries=10), id="inorder_q10"),
    pytest.param(DMRConfig(mapping=MappingPolicy.IN_ORDER,
                           replayq_entries=0), id="inorder_q0"),
]


def _scalar_reference_output(name: str):
    """Run *name* through the scalar interpreter; return its output."""
    run = get_workload(name).prepare(SCALE, SEED)
    payload = run.memory.to_payload()
    reference = {addr: value for addr, value in payload["words"]}
    for block in range(run.launch.grid_dim):
        run_scalar_block(run.program, block, run.launch.block_dim,
                         run.launch.grid_dim, reference)
    memory = GlobalMemory(size_words=payload["size_words"])
    for addr, value in reference.items():
        memory.store(addr, value)
    # the scalar execution must itself satisfy the host reference
    run.check(memory)
    return run.output_of(memory)


@pytest.fixture(scope="module")
def scalar_outputs():
    """Scalar-reference output per workload, computed once per module."""
    return {name: _scalar_reference_output(name) for name in all_workloads()}


@pytest.mark.parametrize("dmr", DMR_VARIANTS)
@pytest.mark.parametrize("name", list(all_workloads()))
def test_workload_matches_scalar_reference(name, dmr, scalar_outputs):
    run = get_workload(name).prepare(SCALE, SEED)
    gpu = GPU(experiment_config(num_sms=2),
              dmr=dmr or DMRConfig.disabled())
    gpu.launch(run.program, run.launch, memory=run.memory)
    assert list(run.output_of(run.memory)) == list(scalar_outputs[name]), (
        f"SIMT execution of {name} diverged from the scalar reference "
        f"under {dmr!r}"
    )


def test_barrier_interleaving_keeps_private_semantics():
    """The barrier-phased driver agrees with plain per-thread runs on a
    program with no shared-memory communication."""
    program = build_counting_kernel()
    reference: dict = {}
    run_scalar_block(program, 0, 32, 1, reference)
    assert reference == {gtid: 4 * gtid for gtid in range(32)}
