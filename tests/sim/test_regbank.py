"""Tests for the register-bank conflict model (Section 2.1)."""

from dataclasses import replace

from repro.common.config import GPUConfig
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.operands import Imm, Reg
from repro.kernel.builder import KernelBuilder
from repro.sim.regbank import bank_of, conflict_extra_cycles, serialized_accesses

from tests.conftest import run_program


class TestBankMath:
    def test_bank_of_modulo(self):
        assert [bank_of(r) for r in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_no_sources_no_conflict(self):
        assert serialized_accesses([]) == 0

    def test_distinct_banks_concurrent(self):
        assert serialized_accesses([0, 1, 2]) == 0

    def test_same_bank_serializes(self):
        assert serialized_accesses([0, 4]) == 1
        assert serialized_accesses([0, 4, 8]) == 2

    def test_same_register_twice_is_one_access(self):
        assert serialized_accesses([3, 3]) == 0

    def test_ffma_worst_case(self):
        # three sources, all in bank 1
        inst = Instruction(
            opcode=Opcode.FFMA, dst=Reg(0), srcs=(Reg(1), Reg(5), Reg(9))
        )
        assert conflict_extra_cycles(inst) == 2

    def test_immediates_do_not_conflict(self):
        inst = Instruction(
            opcode=Opcode.IADD, dst=Reg(0), srcs=(Reg(1), Imm(4))
        )
        assert conflict_extra_cycles(inst) == 0


class TestBankConflictTiming:
    def _conflicting_kernel(self):
        b = KernelBuilder("banky")
        gid = b.reg()          # r0
        b.gtid(gid)
        regs = [Reg(4), Reg(8), Reg(12)]  # all bank 0
        for r in regs:
            b.mov(r, 1)
        acc = Reg(16)          # bank 0 as well
        b.mov(acc, 0)
        for _ in range(8):
            b.iadd(acc, Reg(4), Reg(8))      # bank conflict: 4 vs 8
        b.st_global(gid, acc)
        b.exit()
        return b.build()

    def test_disabled_by_default(self):
        result, _ = run_program(
            self._conflicting_kernel(), GPUConfig.small(1), block=32
        )
        assert result.stats.value("bank_conflict_cycles") == 0

    def test_enabled_charges_cycles(self):
        config = replace(GPUConfig.small(1), model_bank_conflicts=True)
        result, _ = run_program(self._conflicting_kernel(), config, block=32)
        assert result.stats.value("bank_conflict_cycles") >= 8

    def test_conflicts_slow_execution(self):
        program = self._conflicting_kernel()
        plain, _ = run_program(program, GPUConfig.small(1), block=32)
        config = replace(GPUConfig.small(1), model_bank_conflicts=True)
        slowed, _ = run_program(program, config, block=32)
        assert slowed.cycles > plain.cycles

    def test_conflict_free_kernel_unaffected(self):
        b = KernelBuilder("clean")
        gid = b.reg()   # r0 bank 0
        a = Reg(1)      # bank 1
        c = Reg(2)      # bank 2
        b.gtid(gid)
        b.mov(a, 1)
        b.mov(c, 2)
        for _ in range(8):
            b.iadd(Reg(3), a, c)
        b.st_global(gid, Reg(3))
        b.exit()
        program = b.build()
        config = replace(GPUConfig.small(1), model_bank_conflicts=True)
        result, _ = run_program(program, config, block=32)
        assert result.stats.value("bank_conflict_cycles") == 0
