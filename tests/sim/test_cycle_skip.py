"""Cycle-skipping invariance: fast-forwarding must be unobservable.

The SM's event-driven skips (burning a whole leading stall run at once,
jumping idle stretches to the next scoreboard-ready cycle) are a pure
wall-clock optimization.  Every architecturally visible artifact —
``cycles_total``, the stall-cause partition, ReplayQ depth histograms,
the obs MetricSnapshot, memory images — must be byte-identical with
skipping on and off, on the workload shapes that exercise the skip
paths hardest: divergent control flow, barrier convoys, and long RAW
stall chains.
"""

from __future__ import annotations

import pickle
from dataclasses import replace

import pytest

from repro.common.config import DMRConfig, GPUConfig, LaunchConfig
from repro.isa.opcodes import CmpOp
from repro.kernel.builder import KernelBuilder
from repro.sim.gpu import GPU
from repro.sim.memory import GlobalMemory

from tests.conftest import build_counting_kernel, build_divergent_kernel


def build_barrier_kernel():
    """Neighbor exchange through shared memory: bar() convoys every warp."""
    b = KernelBuilder("neighbors")
    tid, nxt, v, gid = b.regs(4)
    b.tid(tid)
    b.gtid(gid)
    b.st_shared(tid, tid)
    b.bar()
    b.iadd(nxt, tid, 1)
    b.irem(nxt, nxt, 64)
    b.ld_shared(v, nxt)
    b.bar()
    b.st_global(gid, v)
    b.exit()
    return b.build()


def build_raw_chain_kernel():
    """Serial dependence chain: every instruction stalls on the last."""
    b = KernelBuilder("raw_chain")
    gid, acc, i = b.regs(3)
    p = b.pred()
    b.gtid(gid)
    b.mov(acc, 1)
    b.mov(i, 0)
    b.label("loop")
    b.imul(acc, acc, 3)      # RAW on acc, mul latency each trip
    b.irem(acc, acc, 1000003)
    b.iadd(i, i, 1)
    b.setp(p, i, CmpOp.LT, 6)
    b.bra("loop", pred=p)
    b.iadd(acc, acc, gid)
    b.st_global(gid, acc)
    b.exit()
    return b.build()


KERNELS = {
    "divergent": (build_divergent_kernel, dict(grid=2, block=32)),
    "barrier": (build_barrier_kernel, dict(grid=2, block=64)),
    "raw_chain": (build_raw_chain_kernel, dict(grid=1, block=32)),
    "loop": (build_counting_kernel, dict(grid=4, block=64)),
}


def run(build, *, grid, block, cycle_skip, engine="mega", dmr=None,
        obs=False, num_sms=2):
    config = replace(GPUConfig.small(num_sms), cycle_skip=cycle_skip)
    gpu = GPU(config, dmr=dmr or DMRConfig.disabled(), engine=engine,
              obs=obs)
    return gpu.launch(build(), LaunchConfig(grid_dim=grid, block_dim=block),
                      memory=GlobalMemory())


def full_payload(result) -> bytes:
    """Every observable surface, pickled for byte comparison."""
    return pickle.dumps(result.to_payload())


class TestSkipInvariance:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    @pytest.mark.parametrize("engine", ["scalar", "mega"])
    def test_payload_identical_with_and_without_skipping(self, name, engine):
        build, kwargs = KERNELS[name]
        on = run(build, **kwargs, cycle_skip=True, engine=engine)
        off = run(build, **kwargs, cycle_skip=False, engine=engine)
        assert full_payload(on) == full_payload(off)

    @pytest.mark.parametrize("name", ["barrier", "raw_chain"])
    def test_invariance_holds_under_dmr(self, name):
        """DMR stalls (replay/bank/flush) feed the skip paths too; the
        stall-cause partition and ReplayQ depth histogram must not move."""
        build, kwargs = KERNELS[name]
        dmr = DMRConfig.paper_default()
        on = run(build, **kwargs, cycle_skip=True, dmr=dmr)
        off = run(build, **kwargs, cycle_skip=False, dmr=dmr)
        on_stats = on.stats.to_payload()
        off_stats = off.stats.to_payload()
        assert on_stats == off_stats
        assert full_payload(on) == full_payload(off)

    @pytest.mark.parametrize("name", ["divergent", "barrier"])
    def test_metric_snapshot_identical(self, name):
        """The obs MetricSnapshot (cycles_total, stall partition, depth
        histograms) is produced through a PipelineProbe without a tracer
        — the one probe shape skipping stays enabled under."""
        build, kwargs = KERNELS[name]
        on = run(build, **kwargs, cycle_skip=True, obs="metrics")
        off = run(build, **kwargs, cycle_skip=False, obs="metrics")
        assert on.obs is not None and off.obs is not None
        assert pickle.dumps(on.obs) == pickle.dumps(off.obs)
        assert full_payload(on) == full_payload(off)

    def test_skip_defaults_on(self):
        assert GPUConfig().cycle_skip is True
        assert replace(GPUConfig(), cycle_skip=False).cycle_skip is False
