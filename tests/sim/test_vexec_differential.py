"""Differential tests: vectorized engine vs the scalar interpreter.

The vector engine's contract is *bit-identity*: for any instruction and
any register state, executing on the vectorized path must leave the
architectural state (registers with their exact Python types, predicates,
memory), the issue event (per-lane inputs/results), and the control
outcome indistinguishable from the scalar path.  These tests enforce the
contract two ways:

* **per-opcode Hypothesis differentials** — every vectorizable opcode
  over adversarial operands: i32 boundary integers (``±2**31``, 0, -1),
  int64 extremes, float specials (``inf``/``nan``/``-0.0``), mixed
  int/float warps, partial warps, permuted lane mappings and guard
  predicates;
* **full-workload payload equality** — all 11 Table 4 workloads under
  multiple mapping policies and ReplayQ sizes, comparing the complete
  ``KernelResult.to_payload()`` pickles byte for byte.

When an example makes *both* engines raise (``f2i`` of ``inf``, ``sin``
of ``inf``), only the exception type is compared: the scalar path may
have retired earlier lanes before raising, while the vector path raises
before mutating state, and the simulation aborts either way.
"""

from __future__ import annotations

import math
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.runner import experiment_config
from repro.common.config import DMRConfig, MappingPolicy
from repro.core.mapping import lane_permutation
from repro.isa.instruction import Instruction
from repro.isa.opcodes import CmpOp, Opcode
from repro.isa.operands import Imm, Reg, SReg, SpecialReg
from repro.sim.executor import Executor
from repro.sim.gpu import GPU
from repro.sim.memory import GlobalMemory
from repro.sim.warp import ThreadBlock, Warp
from repro.workloads import all_workloads, get_workload

WARP_SIZE = 32
NUM_REGS = 4
NUM_PREDS = 2
SHARED_WORDS = 1024
MEM_WORDS = 4096

CROSS = lane_permutation(MappingPolicy.CROSS, WARP_SIZE, 8)
IDENTITY = list(range(WARP_SIZE))

# ----------------------------------------------------------------------
# Operand strategies
# ----------------------------------------------------------------------
BOUNDARY_INTS = [
    0, 1, -1, 2, 31, 32,
    (1 << 31) - 1, -(1 << 31), 1 << 31, -(1 << 31) - 1,
    (1 << 32) - 1, 1 << 32, -(1 << 32),
    (1 << 62), -(1 << 62), (1 << 63) - 1, -(1 << 63),
]
SPECIAL_FLOATS = [
    0.0, -0.0, 1.0, -1.0, 0.5, -2.5,
    float("inf"), float("-inf"), float("nan"),
    1e308, -1e308, 5e-324, 2.0 ** 53, -(2.0 ** 53) - 1.0,
]

INTS = st.one_of(
    st.sampled_from(BOUNDARY_INTS),
    st.integers(min_value=-(1 << 34), max_value=1 << 34),
)
FLOATS = st.one_of(
    st.sampled_from(SPECIAL_FLOATS),
    st.floats(allow_nan=True, allow_infinity=True, width=64),
)
ADDRS = st.integers(min_value=0, max_value=500)


def _lane_values(draw, n, mode):
    if mode == "int":
        return draw(st.lists(INTS, min_size=n, max_size=n))
    if mode == "float":
        return draw(st.lists(FLOATS, min_size=n, max_size=n))
    return draw(st.lists(st.one_of(INTS, FLOATS), min_size=n, max_size=n))


# ----------------------------------------------------------------------
# Instruction specimens (one per vectorizable shape)
# ----------------------------------------------------------------------
def _alu2(op):
    return Instruction(opcode=op, dst=Reg(3), srcs=(Reg(0), Reg(1)))


def _alu1(op):
    return Instruction(opcode=op, dst=Reg(3), srcs=(Reg(0),))


SPECS = {
    "iadd": _alu2(Opcode.IADD), "isub": _alu2(Opcode.ISUB),
    "imul": _alu2(Opcode.IMUL), "idiv": _alu2(Opcode.IDIV),
    "irem": _alu2(Opcode.IREM), "imin": _alu2(Opcode.IMIN),
    "imax": _alu2(Opcode.IMAX), "and": _alu2(Opcode.AND),
    "or": _alu2(Opcode.OR), "xor": _alu2(Opcode.XOR),
    "shl": _alu2(Opcode.SHL), "shr": _alu2(Opcode.SHR),
    "imad": Instruction(opcode=Opcode.IMAD, dst=Reg(3),
                        srcs=(Reg(0), Reg(1), Reg(2))),
    "not": _alu1(Opcode.NOT),
    "fadd": _alu2(Opcode.FADD), "fsub": _alu2(Opcode.FSUB),
    "fmul": _alu2(Opcode.FMUL), "fmin": _alu2(Opcode.FMIN),
    "fmax": _alu2(Opcode.FMAX),
    "ffma": Instruction(opcode=Opcode.FFMA, dst=Reg(3),
                        srcs=(Reg(0), Reg(1), Reg(2))),
    "fabs": _alu1(Opcode.FABS), "fneg": _alu1(Opcode.FNEG),
    "i2f": _alu1(Opcode.I2F), "f2i": _alu1(Opcode.F2I),
    "sin": _alu1(Opcode.SIN), "cos": _alu1(Opcode.COS),
    "sqrt": _alu1(Opcode.SQRT), "rsqrt": _alu1(Opcode.RSQRT),
    "exp": _alu1(Opcode.EXP), "log": _alu1(Opcode.LOG),
    "mov_reg": _alu1(Opcode.MOV),
    "mov_imm_i": Instruction(opcode=Opcode.MOV, dst=Reg(3),
                             srcs=(Imm(-(1 << 31)),)),
    "mov_imm_f": Instruction(opcode=Opcode.MOV, dst=Reg(3),
                             srcs=(Imm(-0.0),)),
    "mov_gtid": Instruction(opcode=Opcode.MOV, dst=Reg(3),
                            srcs=(SReg(SpecialReg.GTID),)),
    "mov_laneid": Instruction(opcode=Opcode.MOV, dst=Reg(3),
                              srcs=(SReg(SpecialReg.LANEID),)),
    "selp": Instruction(opcode=Opcode.SELP, dst=Reg(3),
                        srcs=(Reg(0), Reg(1)), psrc=0),
    "nop": Instruction(opcode=Opcode.NOP),
}
for cmp in CmpOp:
    SPECS[f"setp_{cmp.value}"] = Instruction(
        opcode=Opcode.SETP, pdst=1, srcs=(Reg(0), Reg(1)), cmp=cmp)

MEM_SPECS = {
    "ld_global": Instruction(opcode=Opcode.LD_GLOBAL, dst=Reg(3),
                             srcs=(Reg(0),), offset=3),
    "st_global": Instruction(opcode=Opcode.ST_GLOBAL,
                             srcs=(Reg(0), Reg(1)), offset=2),
    "ld_shared": Instruction(opcode=Opcode.LD_SHARED, dst=Reg(3),
                             srcs=(Reg(0),), offset=1),
    "st_shared": Instruction(opcode=Opcode.ST_SHARED,
                             srcs=(Reg(0), Reg(1))),
}


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def _build(engine, block_dim, mapping):
    block = ThreadBlock(block_id=1, block_dim=block_dim,
                        warp_size=WARP_SIZE, shared_words=SHARED_WORDS)
    warp = Warp(warp_id=0, block=block, warp_base=0, warp_size=WARP_SIZE,
                num_registers=NUM_REGS, num_predicates=NUM_PREDS,
                lane_of_slot=mapping, grid_dim=3)
    block.attach_warps([warp])
    memory = GlobalMemory(size_words=MEM_WORDS)
    for addr in range(600):
        memory.store(addr, addr * 3 if addr % 3 else float(addr) / 2)
        block.shared.store(addr, addr * 7 if addr % 2 else -float(addr))
    executor = Executor(0, memory, None, engine=engine)
    return warp, executor, memory


def _snapshot(warp, executor, memory, result):
    regs = [[warp.read_reg(slot, reg) for reg in range(NUM_REGS)]
            for slot in range(warp.live_slots)]
    preds = warp.preds.tolist()
    event = result.event
    control = result.control
    return pickle.dumps({
        "regs": regs,
        "preds": preds,
        "lane_inputs": event.lane_inputs,
        "lane_results": event.lane_results,
        "logical_mask": event.logical_mask,
        "hw_mask": event.hw_mask,
        "dest_reg": event.dest_reg,
        "control": (control.kind, control.target, control.taken_mask,
                    control.exit_mask),
        "global_mem": memory.to_payload(),
        "shared_mem": list(warp.block.shared._words),
    })


def _run_both(inst, reg_values, pred_values, block_dim, mapping):
    """Execute *inst* on both engines; compare state or exception type."""
    outcomes = []
    for engine in ("scalar", "auto"):
        warp, executor, memory = _build(engine, block_dim, mapping)
        for reg, column in enumerate(reg_values):
            for slot in range(warp.live_slots):
                warp.write_reg(slot, reg, column[slot])
        for pred, column in enumerate(pred_values):
            for slot in range(warp.live_slots):
                warp.write_pred(slot, pred, column[slot])
        try:
            result = executor.execute(warp, inst, 0, cycle=9)
        except Exception as error:  # both engines must agree on the abort
            outcomes.append(("raise", type(error)))
            continue
        outcomes.append(("ok", _snapshot(warp, executor, memory, result)))
    scalar, vector = outcomes
    assert scalar[0] == vector[0], (
        f"{inst!r}: scalar {scalar[0]} but vector {vector[0]}"
    )
    assert scalar[1] == vector[1], (
        f"{inst!r}: engines diverged ({scalar[0]})"
    )


@pytest.mark.parametrize("name", sorted(SPECS))
@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_opcode_bit_identity(name, data):
    inst = SPECS[name]
    block_dim = data.draw(st.sampled_from([WARP_SIZE, 17, 1]), label="dim")
    mapping = data.draw(st.sampled_from([IDENTITY, CROSS]), label="map")
    mode = data.draw(st.sampled_from(["int", "float", "mixed"]),
                     label="mode")
    reg_values = [_lane_values(data.draw, WARP_SIZE, mode)
                  for _ in range(3)]
    pred_values = [data.draw(st.lists(st.booleans(), min_size=WARP_SIZE,
                                      max_size=WARP_SIZE))
                   for _ in range(NUM_PREDS)]
    if data.draw(st.booleans(), label="guarded"):
        inst = Instruction(**{**{f: getattr(inst, f) for f in
                                 inst.__dataclass_fields__},
                              "pred": 0,
                              "pred_neg": data.draw(st.booleans())})
    _run_both(inst, reg_values, pred_values, block_dim, mapping)


@pytest.mark.parametrize("name", sorted(MEM_SPECS))
@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_memory_opcode_bit_identity(name, data):
    inst = MEM_SPECS[name]
    block_dim = data.draw(st.sampled_from([WARP_SIZE, 9]))
    mapping = data.draw(st.sampled_from([IDENTITY, CROSS]))
    addr_col = data.draw(st.lists(ADDRS, min_size=WARP_SIZE,
                                  max_size=WARP_SIZE))
    value_col = _lane_values(data.draw, WARP_SIZE, "mixed")
    pred_values = [data.draw(st.lists(st.booleans(), min_size=WARP_SIZE,
                                      max_size=WARP_SIZE))
                   for _ in range(NUM_PREDS)]
    _run_both(inst, [addr_col, value_col, addr_col], pred_values,
              block_dim, mapping)


@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_bra_bit_identity(data):
    inst = Instruction(opcode=Opcode.BRA, pred=0,
                       pred_neg=data.draw(st.booleans()), target=7)
    block_dim = data.draw(st.sampled_from([WARP_SIZE, 13, 1]))
    mapping = data.draw(st.sampled_from([IDENTITY, CROSS]))
    pred_values = [data.draw(st.lists(st.booleans(), min_size=WARP_SIZE,
                                      max_size=WARP_SIZE))
                   for _ in range(NUM_PREDS)]
    _run_both(inst, [], pred_values, block_dim, mapping)


# ----------------------------------------------------------------------
# Whole-workload equivalence
# ----------------------------------------------------------------------
SCALE = 0.25
SEED = 0

ENGINE_DMR_VARIANTS = [
    pytest.param(None, id="no_dmr"),
    pytest.param(DMRConfig(mapping=MappingPolicy.CROSS, replayq_entries=10),
                 id="cross_q10"),
    pytest.param(DMRConfig(mapping=MappingPolicy.IN_ORDER,
                           replayq_entries=0), id="inorder_q0"),
]


@pytest.mark.parametrize("dmr", ENGINE_DMR_VARIANTS)
@pytest.mark.parametrize("name", list(all_workloads()))
def test_workload_payloads_identical_across_engines(name, dmr):
    """Scalar and vectorized runs must produce byte-identical payloads."""
    payloads = {}
    for engine in ("scalar", "auto"):
        run = get_workload(name).prepare(SCALE, SEED)
        gpu = GPU(experiment_config(num_sms=2),
                  dmr=dmr or DMRConfig.disabled(), engine=engine)
        result = gpu.launch(run.program, run.launch, memory=run.memory)
        run.check(run.memory)
        payloads[engine] = pickle.dumps(result.to_payload())
    assert payloads["scalar"] == payloads["auto"], (
        f"{name} diverged between execution engines under {dmr!r}"
    )


def test_vector_engine_actually_engages():
    """The payload equality above must not be vacuous: a fault-free
    auto-engine run executes (nearly) everything vectorized."""
    run = get_workload("matrixmul").prepare(SCALE, SEED)
    counts = {"vector": 0, "scalar": 0}
    from repro.sim.sm import SM
    original = SM.run

    def spying_run(self):
        try:
            return original(self)
        finally:
            counts["vector"] += self.executor.vector_issues
            counts["scalar"] += self.executor.scalar_issues

    SM.run = spying_run
    try:
        GPU(experiment_config(num_sms=2), engine="auto").launch(
            run.program, run.launch, memory=run.memory)
    finally:
        SM.run = original
    assert counts["vector"] > 0
    assert counts["scalar"] == 0  # matrixmul has no fallback triggers
