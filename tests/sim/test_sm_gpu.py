"""Integration tests for the SM pipeline and GPU top level."""

import pytest

from repro.common.config import DMRConfig, GPUConfig, LaunchConfig
from repro.common.errors import SimulationError
from repro.isa.opcodes import CmpOp
from repro.kernel.builder import KernelBuilder
from repro.sim.gpu import GPU
from repro.sim.memory import GlobalMemory

from tests.conftest import (
    build_counting_kernel,
    build_divergent_kernel,
    run_program,
)


class TestFunctionalExecution:
    def test_counting_kernel(self, tiny_config):
        program = build_counting_kernel(iterations=4)
        result, memory = run_program(program, tiny_config, grid=1, block=32)
        for g in range(32):
            assert memory.load(g) == 4 * g

    def test_divergent_kernel(self, tiny_config):
        program = build_divergent_kernel()
        result, memory = run_program(program, tiny_config, grid=1, block=32)
        for g in range(32):
            expected = 2 * g if g % 2 == 0 else 3 * g
            assert memory.load(g) == expected
        assert result.stats.value("divergent_branches") > 0

    def test_multi_block_multi_sm(self, small_config):
        program = build_counting_kernel(iterations=2)
        result, memory = run_program(program, small_config, grid=4, block=64)
        assert len(result.per_sm_cycles) == 2
        for g in range(4 * 64):
            assert memory.load(g) == 2 * g

    def test_partial_warp(self, tiny_config):
        program = build_counting_kernel(iterations=1)
        result, memory = run_program(program, tiny_config, grid=1, block=20)
        for g in range(20):
            assert memory.load(g) == g
        # 20-thread warp never issues a 32-active instruction
        histogram = result.stats.histogram("active_threads")
        assert histogram.count(32) == 0
        assert histogram.count(20) > 0

    def test_barrier_synchronizes_shared_memory(self, tiny_config):
        # thread i writes shared[i], reads shared[(i+1) % n] after bar
        b = KernelBuilder("neighbors")
        tid, nxt, v, gid = b.regs(4)
        b.tid(tid)
        b.gtid(gid)
        b.st_shared(tid, tid)
        b.bar()
        b.iadd(nxt, tid, 1)
        b.irem(nxt, nxt, 64)
        b.ld_shared(v, nxt)
        b.st_global(gid, v)
        b.exit()
        program = b.build()
        result, memory = run_program(program, tiny_config, grid=1, block=64)
        for t in range(64):
            assert memory.load(t) == (t + 1) % 64

    def test_shared_memory_isolated_between_blocks(self, tiny_config):
        b = KernelBuilder("iso")
        tid, v, gid, cta = b.regs(4)
        b.tid(tid)
        b.gtid(gid)
        b.ctaid(cta)
        b.ld_shared(v, tid)       # must read 0, not another block's data
        b.st_shared(tid, cta)
        b.st_global(gid, v)
        b.exit()
        program = b.build()
        result, memory = run_program(program, tiny_config, grid=3, block=32)
        for g in range(96):
            assert memory.load(g) == 0


class TestTiming:
    def test_cycles_positive_and_bounded(self, tiny_config):
        program = build_counting_kernel(iterations=4)
        result, _ = run_program(program, tiny_config, grid=1, block=32)
        assert result.cycles > result.instructions_issued * 0

    def test_more_work_takes_longer(self, tiny_config):
        short, _ = run_program(build_counting_kernel(2), tiny_config)
        long, _ = run_program(build_counting_kernel(16), tiny_config)
        assert long.cycles > short.cycles

    def test_dependent_chain_slower_than_independent(self, tiny_config):
        dep = KernelBuilder("dep")
        r = dep.reg()
        dep.mov(r, 1)
        for _ in range(10):
            dep.iadd(r, r, 1)  # serial chain
        dep.st_global(0, r)
        dep.exit()
        ind = KernelBuilder("ind")
        regs = ind.regs(11)
        ind.mov(regs[0], 1)
        for i in range(10):
            ind.iadd(regs[i + 1], regs[0], i)  # all independent
        ind.st_global(0, regs[10])
        ind.exit()
        dep_result, _ = run_program(dep.build(), tiny_config, block=32)
        ind_result, _ = run_program(ind.build(), tiny_config, block=32)
        assert dep_result.cycles > ind_result.cycles

    def test_livelock_guard(self, tiny_config):
        b = KernelBuilder("forever")
        p = b.pred()
        r = b.reg()
        b.label("spin")
        b.setp(p, r, CmpOp.EQ, 0)  # r stays 0: always true
        b.bra("spin", pred=p)
        b.exit()
        program = b.build()
        gpu = GPU(tiny_config, dmr=DMRConfig.disabled(), max_cycles=2000)
        with pytest.raises(SimulationError):
            gpu.launch(program, LaunchConfig(1, 32), memory=GlobalMemory())


class TestDispatch:
    def test_block_ids_override_duplicates_work(self, tiny_config):
        program = build_counting_kernel(iterations=2)
        memory = GlobalMemory()
        gpu = GPU(tiny_config, dmr=DMRConfig.disabled())
        result = gpu.launch(
            program, LaunchConfig(grid_dim=2, block_dim=32),
            memory=memory, block_ids=[0, 1, 0, 1],
        )
        # duplicated blocks recompute identical values
        for g in range(64):
            assert memory.load(g) == 2 * g
        single = GPU(tiny_config, dmr=DMRConfig.disabled()).launch(
            program, LaunchConfig(grid_dim=2, block_dim=32),
            memory=GlobalMemory(),
        )
        assert result.instructions_issued == 2 * single.instructions_issued

    def test_occupancy_limit_queues_blocks(self):
        # 1 SM, 1024-thread capacity, blocks of 512: at most 2 resident
        config = GPUConfig.small(1)
        program = build_counting_kernel(iterations=2)
        result, memory = run_program(program, config, grid=4, block=512)
        for g in range(4 * 512):
            assert memory.load(g) == 2 * g

    def test_stats_merged_across_sms(self, small_config):
        # identical blocks: merged issue count scales with grid size
        program = build_counting_kernel(iterations=2)
        two, _ = run_program(program, small_config, grid=2, block=32)
        four, _ = run_program(program, small_config, grid=4, block=32)
        assert four.instructions_issued == 2 * two.instructions_issued

    def test_issue_listener_sees_every_issue(self, tiny_config):
        program = build_counting_kernel(iterations=2)
        events = []
        gpu = GPU(tiny_config, dmr=DMRConfig.disabled())
        result = gpu.launch(
            program, LaunchConfig(1, 32), memory=GlobalMemory(),
            issue_listener=events.append,
        )
        assert len(events) == result.instructions_issued
        assert all(e.sm_id == 0 for e in events)
