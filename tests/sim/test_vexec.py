"""Unit tests for the vectorized execution engine's plumbing.

The bit-identity of the *results* is covered by the differential suite
(:mod:`tests.sim.test_vexec_differential`); these tests pin down the
machinery around it: engine selection, the fault-hook and overflow
fallbacks, the per-program decode cache, the mask helpers and the
per-engine issue counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.config import LaunchConfig
from repro.common.errors import SimulationError
from repro.sim import vexec
from repro.sim.executor import Executor, FaultHook
from repro.sim.gpu import GPU
from repro.sim.memory import GlobalMemory
from repro.sim.warp import ThreadBlock, Warp
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.operands import Imm, Reg
from repro.kernel.builder import KernelBuilder

WARP = 32


def _warp(block_dim=WARP, num_regs=4):
    block = ThreadBlock(block_id=0, block_dim=block_dim, warp_size=WARP,
                        shared_words=64)
    warp = Warp(warp_id=0, block=block, warp_base=0, warp_size=WARP,
                num_registers=num_regs, num_predicates=2,
                lane_of_slot=list(range(WARP)), grid_dim=1)
    block.attach_warps([warp])
    return warp


def _executor(engine="auto", fault_hook=None):
    return Executor(0, GlobalMemory(size_words=1024), fault_hook,
                    engine=engine)


IADD = Instruction(opcode=Opcode.IADD, dst=Reg(2), srcs=(Reg(0), Reg(1)))


# ----------------------------------------------------------------------
# Engine selection
# ----------------------------------------------------------------------
def test_invalid_engine_rejected():
    with pytest.raises(SimulationError):
        _executor(engine="turbo")


def test_auto_engine_vectorizes():
    ex, warp = _executor(), _warp()
    ex.execute(warp, IADD, 0, cycle=0)
    assert (ex.vector_issues, ex.scalar_issues) == (1, 0)


def test_scalar_engine_pins_interpreter():
    ex, warp = _executor(engine="scalar"), _warp()
    ex.execute(warp, IADD, 0, cycle=0)
    assert (ex.vector_issues, ex.scalar_issues) == (0, 1)


def test_fault_hook_forces_scalar_path():
    """Faults are injected per lane; an armed hook must disable the
    vector engine entirely (the fault-model contract)."""
    ex, warp = _executor(fault_hook=FaultHook()), _warp()
    ex.execute(warp, IADD, 0, cycle=0)
    assert (ex.vector_issues, ex.scalar_issues) == (0, 1)


def test_repro_exec_env_pins_gpu_engine(monkeypatch):
    monkeypatch.setenv("REPRO_EXEC", "scalar")
    assert GPU().engine == "scalar"
    monkeypatch.delenv("REPRO_EXEC")
    assert GPU().engine == "auto"
    assert GPU(engine="scalar").engine == "scalar"


# ----------------------------------------------------------------------
# Fallbacks
# ----------------------------------------------------------------------
def test_reg_overflow_forces_scalar():
    ex, warp = _executor(), _warp()
    warp.write_reg(0, 0, 1 << 80)  # fits no plane -> overflow side table
    assert warp.reg_overflow
    ex.execute(warp, IADD, 0, cycle=0)
    assert (ex.vector_issues, ex.scalar_issues) == (0, 1)


def test_mixed_int_float_still_vectorizes_float_ops():
    ex, warp = _executor(), _warp()
    for slot in range(WARP):
        warp.write_reg(slot, 0, 1.5 if slot % 2 else 7)
        warp.write_reg(slot, 1, 2)
    fadd = Instruction(opcode=Opcode.FADD, dst=Reg(2), srcs=(Reg(0), Reg(1)))
    ex.execute(warp, fadd, 0, cycle=0)
    assert ex.vector_issues == 1
    assert warp.read_reg(0, 2) == 9.0
    assert warp.read_reg(1, 2) == 3.5


def test_int_op_on_float_operand_falls_back():
    """A float reaching an integer ALU drops the issue to the scalar
    path (compute_lane's ``int()`` truncation semantics), with no state
    mutated by the aborted vector attempt."""
    ex, warp = _executor(), _warp()
    warp.write_reg(3, 0, 2.75)
    ex.execute(warp, IADD, 0, cycle=0)
    assert (ex.vector_issues, ex.scalar_issues) == (0, 1)
    assert warp.read_reg(3, 2) == 2  # int(2.75) + 0, scalar semantics


def test_f2i_nonfinite_raises_identically():
    for engine in ("scalar", "auto"):
        ex, warp = _executor(engine=engine), _warp()
        for slot in range(WARP):
            warp.write_reg(slot, 0, float("inf"))
        f2i = Instruction(opcode=Opcode.F2I, dst=Reg(2), srcs=(Reg(0),))
        with pytest.raises(OverflowError):
            ex.execute(warp, f2i, 0, cycle=0)


# ----------------------------------------------------------------------
# Decode cache
# ----------------------------------------------------------------------
def _tiny_program():
    k = KernelBuilder("tiny")
    r = k.reg()
    k.mov(r, 41)
    k.iadd(r, r, 1)
    k.exit()
    return k.build()


def test_decode_cache_shared_across_executors():
    program = _tiny_program()
    ex_a, ex_b = _executor(), _executor()
    ex_a.bind_program(program)
    ex_b.bind_program(program)
    assert ex_a._decoded is ex_b._decoded  # memoized on the Program
    assert len(ex_a._decoded) == len(program.instructions)
    for entry, inst in zip(ex_a._decoded, program.instructions):
        assert entry.inst is inst


def test_scalar_executor_skips_decode():
    ex = _executor(engine="scalar")
    ex.bind_program(_tiny_program())
    assert ex._decoded is None


def test_unbound_executor_decodes_on_demand():
    ex, warp = _executor(), _warp()
    ex.execute(warp, IADD, 0, cycle=0)
    ex.execute(warp, IADD, 5, cycle=1)
    assert ex.vector_issues == 2
    assert len(ex._adhoc) == 1  # equality-keyed, decoded once


# ----------------------------------------------------------------------
# Mask helpers
# ----------------------------------------------------------------------
def test_mask_bits_roundtrip():
    for width in (1, 7, 32):
        for mask in (0, 1, (1 << width) - 1, 0b1010101 & ((1 << width) - 1)):
            bits = vexec.mask_bits(mask, width)
            assert bits.shape == (width,)
            assert bits.dtype == np.bool_
            assert vexec.pack_mask(bits) == mask


def test_mask_bits_is_readonly():
    bits = vexec.mask_bits(0b101, 3)
    with pytest.raises(ValueError):
        bits[0] = False  # cached arrays must not be mutable


# ----------------------------------------------------------------------
# End-to-end smoke: full launch on each engine
# ----------------------------------------------------------------------
def test_launch_smoke_both_engines():
    for engine in ("scalar", "auto"):
        k = KernelBuilder("smoke")
        addr, val = k.regs(2)
        k.gtid(addr)
        k.imad(val, addr, 3, 100)
        k.st_global(addr, val)
        k.exit()
        memory = GlobalMemory(size_words=1024)
        GPU(engine=engine).launch(
            k.build(), LaunchConfig(grid_dim=2, block_dim=64), memory=memory)
        assert [memory.load(i) for i in range(128)] == [
            100 + 3 * i for i in range(128)]
