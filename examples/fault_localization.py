#!/usr/bin/env python
"""Fault localization: Warped-DMR's per-SP diagnosability (Section 3.4).

The paper argues for checking at SP granularity: unlike SM- or
chip-level DMR, per-lane comparisons identify *which* SP is defective,
so the SM survives with core re-routing instead of being disabled
wholesale.  This demo injects a stuck-at fault into a randomly chosen
SP, runs a workload under Warped-DMR, and lets the evidence point back
at the broken lane.

Run:  python examples/fault_localization.py  [trials]
"""

import random
import sys

from repro import DMRConfig, GPU, GPUConfig
from repro.core.diagnosis import FaultLocalizer
from repro.faults import FaultInjector, StuckAtFault
from repro.isa import UnitType
from repro.workloads import get_workload


def localize_one(faulty_lane: int) -> tuple:
    workload = get_workload("scan")
    run = workload.prepare(scale=0.5)
    fault = StuckAtFault(sm_id=0, hw_lane=faulty_lane, unit=UnitType.SP,
                         bit=2, stuck_to=1)
    gpu = GPU(GPUConfig.small(num_sms=1), dmr=DMRConfig.paper_default(),
              fault_hook=FaultInjector([fault]))
    result = gpu.launch(run.program, run.launch, memory=run.memory)
    localizer = FaultLocalizer()
    localizer.add(result.detections)
    diagnosis = localizer.diagnose_sm(0)
    return diagnosis, len(result.detections)


def main():
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    rng = random.Random(42)
    correct = 0
    for trial in range(trials):
        faulty_lane = rng.randrange(32)
        diagnosis, detections = localize_one(faulty_lane)
        verdict = "?" if not diagnosis.localized else diagnosis.suspect_lane
        hit = diagnosis.localized and diagnosis.suspect_lane == faulty_lane
        correct += hit
        print(f"trial {trial}: injected lane {faulty_lane:2d}  ->  "
              f"diagnosis: {diagnosis}  "
              f"{'HIT' if hit else 'miss'}")
    print()
    print(f"localized {correct}/{trials} injected faults to the exact SP")
    print("An SM-level checker would have flagged the same runs but "
          "condemned all 32 SPs; Warped-DMR names the broken one.")


if __name__ == "__main__":
    main()
