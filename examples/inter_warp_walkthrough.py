#!/usr/bin/env python
"""Inter-warp DMR walkthrough: the paper's Figure 4 scenario, live.

Builds a kernel whose inner loop interleaves shared-memory loads with
adds — the exact pattern of Figure 4's three-warp trace — and runs it
with an issue listener that narrates what the Replay Checker does each
cycle: co-execution with a different-type instruction, ReplayQ
enqueue/swap, or a full-queue stall.

Run:  python examples/inter_warp_walkthrough.py
"""

from repro import DMRConfig, GPU, GPUConfig, GlobalMemory, LaunchConfig
from repro.isa import CmpOp
from repro.kernel import KernelBuilder

TRACE_CYCLES = 40


def build_interleaved_kernel():
    """Figure 4's code shape: ld.shared / add.f32 interleaved."""
    b = KernelBuilder("fig4_interleave")
    tid, i, a0, a1, acc = b.regs(5)
    p = b.pred()
    b.tid(tid)
    b.st_shared(tid, 1.0)
    b.bar()
    b.mov(acc, 0.0)
    b.mov(i, 0)
    b.label("loop")
    b.ld_shared(a0, tid, offset=0)     # ld.shared  (LD/ST units)
    b.fadd(acc, acc, a0)               # add.f32    (SPs)
    b.ld_shared(a1, tid, offset=0)
    b.fadd(acc, acc, a1)
    b.iadd(i, i, 1)
    b.setp(p, i, CmpOp.LT, 6)
    b.bra("loop", pred=p)
    b.st_global(tid, acc)
    b.exit()
    return b.build()


def main():
    program = build_interleaved_kernel()
    print("Kernel (Figure 4's interleaved add/load shape):")
    print(program.disassemble())
    print()

    narration = []

    def listener(event):
        if event.cycle <= TRACE_CYCLES:
            narration.append(
                f"cycle {event.cycle:3d}: warp{event.warp_id} issues "
                f"{event.instruction.opcode.value:10s} "
                f"[{event.unit.value:4s}] "
                f"active {event.active_count}/32"
            )

    gpu = GPU(GPUConfig.small(num_sms=1), dmr=DMRConfig.paper_default())
    result = gpu.launch(
        program, LaunchConfig(grid_dim=1, block_dim=96),  # 3 warps
        memory=GlobalMemory(), issue_listener=listener,
    )

    print(f"first {TRACE_CYCLES} cycles of the issue stream:")
    for line in narration:
        print(" ", line)
    print()
    stats = result.stats
    print("Replay Checker activity over the whole kernel:")
    print(f"  co-executed with next instruction : "
          f"{stats.value('inter_warp_verify_coexec')}")
    print(f"  co-executed from ReplayQ (swap)   : "
          f"{stats.value('inter_warp_verify_coexec_from_queue')}")
    print(f"  drained on idle units             : "
          f"{stats.value('inter_warp_verify_drain_idle') + stats.value('inter_warp_verify_coexec_idle')}")
    print(f"  eager re-executions (queue full)  : "
          f"{stats.value('inter_warp_verify_eager')}")
    print(f"  kernel-end flushes                : "
          f"{stats.value('inter_warp_verify_flush')}")
    print(f"  RAW-forced early verifications    : "
          f"{stats.value('inter_warp_verify_raw_forced')}")
    print()
    print(f"all {stats.value('inter_warp_instructions')} fully-utilized "
          f"instructions verified; coverage {result.coverage}")


if __name__ == "__main__":
    main()
