#!/usr/bin/env python
"""End-to-end comparison of error-detection schemes (Figure 10).

Runs Original, R-Naive, R-Thread, DMTR and Warped-DMR on a few
workloads and prints the kernel/transfer time decomposition, normalized
to the unprotected original execution.

Run:  python examples/scheme_comparison.py
"""

from repro.analysis.report import format_table
from repro.baselines import SCHEME_ORDER, compare_schemes
from repro.common.config import GPUConfig
from repro.workloads import get_workload

WORKLOADS = ["scan", "matrixmul", "bitonic"]
CONFIG = GPUConfig.small(num_sms=2)


def main():
    for name in WORKLOADS:
        results = compare_schemes(get_workload(name), CONFIG, scale=1.0)
        base = results["original"].total_time_s
        rows = []
        for scheme in SCHEME_ORDER:
            r = results[scheme]
            rows.append([
                scheme,
                r.kernel_cycles,
                f"{r.kernel_time_s*1e6:.1f}",
                f"{r.transfer_time_s*1e6:.1f}",
                f"{r.total_time_s / base:.3f}",
            ])
        print(format_table(
            ["scheme", "kernel cycles", "kernel us", "transfer us",
             "total (norm.)"],
            rows, title=f"{name}: end-to-end time per scheme",
        ))
        print()
    print("Paper ordering to look for: r-naive slowest (two launches,")
    print("doubled transfers); warped-dmr closest to the original.")


if __name__ == "__main__":
    main()
