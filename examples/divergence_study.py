#!/usr/bin/env python
"""Divergence study: why Warped-DMR's opportunity exists (Figures 1/5).

Runs a slice of the paper's workload suite on the simulator and prints
the active-thread and instruction-type breakdowns, plus the coverage
each divergence profile yields — the paper's motivation data,
regenerated live.

Run:  python examples/divergence_study.py  [scale]
"""

import sys

from repro.analysis.active_threads import active_thread_breakdown, BINS
from repro.analysis.inst_mix import unit_mix
from repro.analysis.report import format_table
from repro.analysis.runner import SuiteRunner, experiment_config
from repro.common.config import DMRConfig

WORKLOADS = ["bfs", "mum", "scan", "bitonic", "matrixmul", "sha", "libor"]


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    runner = SuiteRunner(experiment_config(num_sms=2), scale=scale)

    rows = []
    for name in WORKLOADS:
        baseline = runner.baseline(name)
        bins = active_thread_breakdown(baseline)
        mix = unit_mix(baseline)
        dmr = runner.run(name, DMRConfig.paper_default())
        rows.append([
            name,
            *(f"{bins[label]*100:.0f}%" for label, _, _ in BINS),
            f"{mix['SP']*100:.0f}/{mix['LDST']*100:.0f}/{mix['SFU']*100:.0f}",
            f"{dmr.coverage.coverage_percent:.1f}%",
            f"{dmr.cycles / baseline.cycles:.3f}",
        ])

    headers = (["workload"] + [label for label, _, _ in BINS]
               + ["SP/LD/SFU", "coverage", "norm.cycles"])
    print(format_table(
        headers, rows,
        title=(f"Divergence, instruction mix, and the resulting "
               f"Warped-DMR coverage/overhead (scale={scale})"),
    ))
    print()
    print("Reading guide: heavy low-active bins (BFS, MUM) -> intra-warp")
    print("DMR covers nearly everything for free; heavy 32-active bins")
    print("(MatrixMul, SHA, Libor) -> inter-warp DMR covers everything")
    print("but pays ReplayQ stalls.")


if __name__ == "__main__":
    main()
