#!/usr/bin/env python
"""Quickstart: write a kernel, run it under Warped-DMR, read the report.

Builds a small SAXPY-with-a-branch kernel in the mini-ISA, launches it
on the simulated GPU with the paper's default Warped-DMR configuration,
checks the numerical result, and prints the coverage/overhead summary.

Run:  python examples/quickstart.py
"""

import random

from repro import DMRConfig, GPU, GPUConfig, GlobalMemory, LaunchConfig
from repro.isa import CmpOp
from repro.kernel import KernelBuilder

N = 256
X_BASE, Y_BASE, OUT_BASE = 0, N, 2 * N


def build_kernel():
    """out[i] = y[i] + 2*x[i] when x[i] > 0, else y[i]."""
    b = KernelBuilder("saxpy_branchy")
    i, x, y = b.regs(3)
    p = b.pred()
    b.gtid(i)
    b.ld_global(x, i, offset=X_BASE)
    b.ld_global(y, i, offset=Y_BASE)
    b.setp(p, x, CmpOp.GT, 0.0)
    b.bra("skip", pred=p, neg=True)   # divergence: only x>0 lanes work
    b.ffma(y, x, 2.0, y)
    b.label("skip")
    b.st_global(i, y, offset=OUT_BASE)
    b.exit()
    return b.build()


def main():
    program = build_kernel()
    print("Kernel:")
    print(program.disassemble())
    print()

    rng = random.Random(1)
    xs = [rng.uniform(-1, 1) for _ in range(N)]
    ys = [float(k) for k in range(N)]
    memory = GlobalMemory()
    memory.write_block(X_BASE, xs)
    memory.write_block(Y_BASE, ys)

    gpu = GPU(GPUConfig.small(num_sms=2), dmr=DMRConfig.paper_default())
    result = gpu.launch(
        program, LaunchConfig(grid_dim=4, block_dim=64), memory=memory
    )

    for k in range(N):
        expected = ys[k] + 2.0 * xs[k] if xs[k] > 0 else ys[k]
        assert memory.load(OUT_BASE + k) == expected, k
    print(f"numerical check passed for {N} threads")
    print()
    print(f"kernel cycles        : {result.cycles}")
    print(f"instructions issued  : {result.instructions_issued}")
    print(f"coverage             : {result.coverage}")
    print(f"intra-warp DMR insts : "
          f"{result.stats.value('intra_warp_instructions')}")
    print(f"inter-warp DMR insts : "
          f"{result.stats.value('inter_warp_instructions')}")
    print(f"ReplayQ enqueues     : {result.stats.value('replayq_enqueues')}")
    print(f"detections (no fault): {len(result.detections)}")


if __name__ == "__main__":
    main()
