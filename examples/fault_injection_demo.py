#!/usr/bin/env python
"""Fault injection: silent corruption vs Warped-DMR detection.

Injects a permanent stuck-at fault into one SP lane and a transient
bit flip, running MatrixMul three ways:

1. no error detection  -> silent data corruption (SDC);
2. Warped-DMR without lane shuffling -> the stuck-at hides (the paper's
   hidden-error problem: the replay recomputes on the same broken SP);
3. full Warped-DMR -> detected.

Run:  python examples/fault_injection_demo.py
"""

from repro import DMRConfig, GPU, GPUConfig, SimulationError
from repro.faults import FaultInjector, StuckAtFault, TransientFault
from repro.isa import UnitType
from repro.workloads import get_workload

CONFIG = GPUConfig.small(num_sms=1)
SCALE = 0.5


def run(dmr, fault):
    """Returns (result_or_None, corrupt, crashed).

    A corrupted *address* computation can send a load outside the
    simulated memory — the GPU equivalent of a segfault.  That outcome
    is itself detectable (it kills the kernel), so it is reported
    rather than treated as a harness failure.
    """
    workload = get_workload("matrixmul")
    run_spec = workload.prepare(scale=SCALE)
    injector = FaultInjector([fault]) if fault else None
    gpu = GPU(CONFIG, dmr=dmr, fault_hook=injector, max_cycles=200_000)
    try:
        result = gpu.launch(
            run_spec.program, run_spec.launch, memory=run_spec.memory
        )
    except SimulationError as error:
        return None, True, str(error)
    try:
        run_spec.check(run_spec.memory)
        corrupt = False
    except AssertionError:
        corrupt = True
    return result, corrupt, None


def report(title, result, corrupt, crashed):
    if crashed is not None:
        print(f"{title:46s} CRASHED: {crashed}")
        return
    flags = len(result.detections)
    print(f"{title:46s} output corrupt: {str(corrupt):5s} "
          f"detections: {flags}")
    if flags:
        print(f"    first: {result.detections[0]}")


def main():
    # bit 2 perturbs low data/address bits: results corrupt but
    # addresses stay in range, giving the classic SDC scenario
    stuck = StuckAtFault(sm_id=0, hw_lane=5, unit=UnitType.SP,
                         bit=2, stuck_to=1)
    print(f"permanent fault: {stuck}")
    print()

    result, corrupt, crashed = run(DMRConfig.disabled(), stuck)
    report("no detection (baseline GPU)", result, corrupt, crashed)
    assert corrupt and result is not None and not result.detections

    result, corrupt, crashed = run(DMRConfig(lane_shuffle=False), stuck)
    report("Warped-DMR, lane shuffling OFF", result, corrupt, crashed)
    if result is not None:
        hidden = [d for d in result.detections if d.mode == "inter"]
        print(f"    inter-warp replays that noticed it: {len(hidden)} "
              "(same-lane replay is blind to stuck-at faults)")

    result, corrupt, crashed = run(DMRConfig.paper_default(), stuck)
    report("Warped-DMR, lane shuffling ON", result, corrupt, crashed)
    assert result is not None and result.detections

    print()
    transient = TransientFault(sm_id=0, hw_lane=9, unit=UnitType.SP,
                               bit=2, cycle=120)
    print(f"transient fault: {transient}")
    result, corrupt, crashed = run(DMRConfig.paper_default(), transient)
    report("Warped-DMR vs a single bit flip", result, corrupt, crashed)


if __name__ == "__main__":
    main()
